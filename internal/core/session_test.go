package core

import (
	"bytes"
	"net"
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/wire"
	"star/internal/workload/ycsb"
)

// probeRead is a read-only probe that captures the row bytes it
// observes, so tests can tell WHICH version of a record a snapshot read
// served (ycsb.ReadTxn discards the value).
type probeRead struct {
	part int
	key  storage.Key
	accs []txn.Access
	got  []byte
}

func newProbeRead(w *ycsb.Workload, part, row int) *probeRead {
	p := &probeRead{part: part, key: w.Key(part, row)}
	p.accs = []txn.Access{{Table: ycsb.TableID, Part: part, Key: p.key}}
	return p
}

func (p *probeRead) Name() string           { return "test.probe-read" }
func (p *probeRead) Accesses() []txn.Access { return p.accs }
func (p *probeRead) ReadOnly() bool         { return true }
func (p *probeRead) Run(ctx txn.Ctx) error {
	row, ok := ctx.Read(ycsb.TableID, p.part, p.key)
	if !ok {
		return txn.ErrConflict
	}
	p.got = append(p.got[:0], row...)
	return nil
}

// newSessionHarness builds an unstarted 2-node cluster of two FULL
// replicas so both nodes hold every partition and either gate can serve
// snapshot reads. Nothing runs — tests drive workers and gates
// synchronously and set epochs by hand.
func newSessionHarness(t *testing.T) (*Engine, *ycsb.Workload) {
	t.Helper()
	wl := ycsb.New(ycsb.Config{
		Partitions:          2, // Nodes × WorkersPerNode
		RecordsPerPartition: 64,
	})
	e := build(Config{
		RT:             rt.NewReal(),
		Nodes:          2,
		FullReplicas:   2,
		WorkersPerNode: 1,
		Workload:       wl,
		Seed:           1,
		SnapshotReads:  true,
		Net:            simnet.Config{Nodes: 3},
	})
	for _, n := range e.nodes {
		n.epoch.Store(2) // in-flight epoch 2 everywhere: fence = loaded state
		n.workers[0].strm.SetEpoch(2)
	}
	return e, wl
}

// TestSessionTokenReadYourOwnWrites is the read-your-own-writes pin for
// the client session layer, built to FAIL with the freshness check
// disabled:
//
//  1. A session commits a write on the master in epoch 2 and holds
//     token 2. The replica has not applied it and its fence has not
//     advanced.
//  2. With the token check ON, the replica refuses the session's read
//     (TryRead falls back to the master) — the session can never
//     observe the pre-write version.
//  3. With the token check OFF (the skipFreshness test hook), the very
//     same read IS served — and returns the stale pre-write bytes,
//     which is exactly the violation the check exists to prevent.
//  4. Once the replica applies the write and its fence passes the
//     token, TryRead serves the read locally and returns the session's
//     own write.
func TestSessionTokenReadYourOwnWrites(t *testing.T) {
	e, wl := newSessionHarness(t)
	g1 := e.Gate(1)

	// Baseline: what a fresh session (token 0) reads before the write.
	before := newProbeRead(wl, 0, 0)
	resp, ok := g1.TryRead(0, txn.NewRequest(before, 0))
	if !ok || resp.Status != StatusOK {
		t.Fatalf("baseline snapshot read not served: ok=%v resp=%+v", ok, resp)
	}
	if resp.Token != 1 {
		t.Fatalf("baseline read token = %d, want fence 1", resp.Token)
	}
	orig := append([]byte(nil), before.got...)

	// The session's write commits on the master (node 0) in epoch 2; the
	// session now holds token 2. The replica (node 1) has NOT applied it.
	w0 := e.nodes[0].workers[0]
	write := txn.NewRequest(wl.WriteTxn([]int{0}, []int{0}, []byte("session-w")), 0)
	w0.execSerial(write, 2)
	if w0.committed != 1 {
		t.Fatal("session write did not commit on the master")
	}
	const token = 2

	// Token check ON: the replica's fence (epoch 2 in flight) has not
	// covered the token, so the read must fall back to the master.
	stale := newProbeRead(wl, 0, 0)
	fallbacks := e.snapFallback.Load()
	if _, ok := g1.TryRead(token, txn.NewRequest(stale, 0)); ok {
		t.Fatal("replica served a session read its fence does not cover")
	}
	if e.snapFallback.Load() != fallbacks+1 {
		t.Fatal("refused read was not accounted as a snapshot fallback")
	}

	// Token check OFF: the same read is served — with the PRE-write
	// bytes. This is the read-your-own-writes violation the token
	// prevents; if the check were removed, this branch is what every
	// session would observe.
	g1.skipFreshness = true
	resp, ok = g1.TryRead(token, txn.NewRequest(stale, 0))
	g1.skipFreshness = false
	if !ok || resp.Status != StatusOK {
		t.Fatalf("check disabled: read not served: ok=%v resp=%+v", ok, resp)
	}
	if !bytes.Equal(stale.got, orig) {
		t.Fatal("check disabled: expected the stale pre-write version to leak")
	}

	// The replica catches up (applies the same write under epoch 2) and
	// its fence completes: epoch 3 begins. Now the token admits the read
	// locally, and it returns the session's own write.
	w1 := e.nodes[1].workers[0]
	w1.execSerial(txn.NewRequest(wl.WriteTxn([]int{0}, []int{0}, []byte("session-w")), 0), 2)
	e.nodes[1].epoch.Store(3)

	after := newProbeRead(wl, 0, 0)
	resp, ok = g1.TryRead(token, txn.NewRequest(after, 0))
	if !ok || resp.Status != StatusOK {
		t.Fatalf("caught-up replica refused the read: ok=%v resp=%+v", ok, resp)
	}
	if resp.Token != 3-1 {
		t.Fatalf("served read token = %d, want fence %d", resp.Token, 3-1)
	}
	if bytes.Equal(after.got, orig) {
		t.Fatal("caught-up read still returned the pre-write version")
	}
	if bytes.Equal(after.got, stale.got) && bytes.Equal(stale.got, orig) {
		t.Fatal("read-your-own-writes: session's write never became visible")
	}
}

// TestSessionTokenlessReadsRouteZeroMasterMessages is the session-layer
// transport-accounting pin: a token-less session (token 0 — it has
// written nothing) running read-only transactions through a replica's
// gate is served entirely from the local fence snapshot and routes ZERO
// master messages. A forwarded write through the same gate routes
// exactly one — proving the accounting is live, not vacuous.
func TestSessionTokenlessReadsRouteZeroMasterMessages(t *testing.T) {
	e, wl := newSessionHarness(t)
	g1 := e.Gate(1)

	const reads = 25
	base := e.Net().Messages(transport.Data)
	for i := 0; i < reads; i++ {
		req := txn.NewRequest(wl.ReadTxn([]int{0, 1}, []int{i, i}), 0)
		resp, ok := g1.TryRead(0, req)
		if !ok || resp.Status != StatusOK {
			t.Fatalf("read %d not served from the snapshot: ok=%v resp=%+v", i, ok, resp)
		}
		if resp.Reads != 2 {
			t.Fatalf("read %d: Reads = %d, want 2", i, resp.Reads)
		}
	}
	if d := e.Net().Messages(transport.Data) - base; d != 0 {
		t.Fatalf("token-less snapshot session routed %d master messages, want 0", d)
	}
	if got := e.snapReads.Load(); got != reads {
		t.Fatalf("snapshot_reads = %d, want %d", got, reads)
	}

	// Control: one forwarded write = exactly one master-routed message.
	wreq := txn.NewRequest(wl.WriteTxn([]int{0}, []int{0}, []byte("x")), 0)
	if _, ok := g1.TryRead(0, wreq); ok {
		t.Fatal("gate served a WRITE from the snapshot path")
	}
	g1.Submit(1, 0, wreq)
	if d := e.Net().Messages(transport.Data) - base; d != 1 {
		t.Fatalf("forwarded write routed %d master messages, want 1", d)
	}
	if g1.Pending() != 1 {
		t.Fatalf("Pending = %d after one forward, want 1", g1.Pending())
	}
}

// TestClientDisconnectReleasesSessionSlots is the kill-the-client pin
// for satellite #3: a client that fills the front door's admission
// window with forwarded requests and then dies mid-request must leak
// nothing — every gate slot is dropped, every waiter unblocks, and the
// door keeps serving new connections.
func TestClientDisconnectReleasesSessionSlots(t *testing.T) {
	e, wl := newSessionHarness(t)
	codec := NewWireCodec(wl)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	const window = 4
	// Node 1's door: writes forward to the (never-answering) master, so
	// forwarded slots stay occupied until the connection dies.
	e.ServeClients(1, ln, codec, window)
	g1 := e.Gate(1)

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}
	sendReq := func(c net.Conn, ticket uint64, p txn.Procedure) {
		t.Helper()
		req := txn.NewRequest(p, 0)
		req.Ticket = ticket
		frame, err := wire.AppendFrame(nil, 0, 0, 0, codec, ClientReq{Req: req})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := c.Write(frame); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	readResp := func(c net.Conn) ClientResp {
		t.Helper()
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		body, err := wire.ReadFrame(c, wire.MaxClientFrame)
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		_, m, err := wire.DecodeFrameBody(body, codec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return m.(ClientResp)
	}
	waitPending := func(label string, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for g1.Pending() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: gate pending = %d, want %d", label, g1.Pending(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Fill the window with forwarded writes, then overflow it: the door
	// must shed the excess with StatusBusy, not queue it.
	victim := dial()
	for i := uint64(1); i <= window; i++ {
		sendReq(victim, i, wl.WriteTxn([]int{0}, []int{int(i)}, []byte("v")))
	}
	waitPending("window full", window)
	sendReq(victim, window+1, wl.WriteTxn([]int{0}, []int{9}, []byte("v")))
	if resp := readResp(victim); resp.Status != StatusBusy || resp.Ticket != window+1 {
		t.Fatalf("overflow response = %+v, want StatusBusy for ticket %d", resp, window+1)
	}
	if g1.Pending() != window {
		t.Fatalf("shed request consumed a slot: pending = %d", g1.Pending())
	}

	// Kill the client mid-request: all its slots must drain.
	victim.Close()
	waitPending("after kill", 0)

	// The door is still healthy: a new session's snapshot read completes,
	// and its forwarded writes get fresh window slots (no leaked count).
	fresh := dial()
	defer fresh.Close()
	sendReq(fresh, 1, wl.ReadTxn([]int{0}, []int{0}))
	if resp := readResp(fresh); resp.Status != StatusOK || resp.Ticket != 1 {
		t.Fatalf("post-kill snapshot read = %+v, want StatusOK ticket 1", resp)
	}
	for i := uint64(2); i <= window+1; i++ {
		sendReq(fresh, i, wl.WriteTxn([]int{1}, []int{int(i)}, []byte("f")))
	}
	waitPending("fresh window", window)

	// A late master response for a dropped ticket is discarded, not
	// misdelivered: deliver() on an unknown ticket is a no-op.
	g1.deliver(ClientResp{Ticket: 1, Status: StatusOK})
	if g1.Pending() != window {
		t.Fatalf("late response disturbed live sessions: pending = %d", g1.Pending())
	}
}
