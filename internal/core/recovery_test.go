package core

import (
	"os"
	"testing"
	"time"

	"star/internal/rt"
	"star/internal/storage"
	"star/internal/wal"
	"star/internal/workload/ycsb"
)

// TestCase4DiskRecovery exercises §4.5.3 case 4 end to end: the cluster
// runs with real per-thread recovery logs; after a total stop, a fresh
// full-replica database is rebuilt from the full replica's log files
// alone and must match the in-memory state at the last durable epoch.
func TestCase4DiskRecovery(t *testing.T) {
	dir := t.TempDir()
	s := rt.NewSim()
	wl := ycsb.New(ycsb.Config{
		Partitions:          6,
		RecordsPerPartition: 128,
		CrossPct:            20,
	})
	e := New(Config{
		RT:             s,
		Nodes:          3,
		WorkersPerNode: 2,
		Workload:       wl,
		Iteration:      2 * time.Millisecond,
		LogDir:         dir,
		Seed:           9,
	})
	s.Run(40 * time.Millisecond)
	// Freeze and let several more fences pass so every flushed entry is
	// covered by a durable epoch mark.
	e.Freeze()
	s.Run(s.Now() + 20*time.Millisecond)
	s.Stop()
	if err := e.CloseLogs(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Committed == 0 {
		t.Fatal("no commits")
	}
	logs := e.LogFiles(0)
	if len(logs) == 0 {
		t.Fatal("full replica wrote no log files")
	}

	// "Power outage": rebuild node 0 from disk alone.
	recovered := wl.BuildDB(6, nil)
	wl.Load(recovered) // checkpoint-equivalent: the initial load
	epoch, applied, err := wal.Recover(recovered, "", logs)
	if err != nil {
		t.Fatal(err)
	}
	if epoch < 2 || applied == 0 {
		t.Fatalf("recovered epoch=%d applied=%d", epoch, applied)
	}
	for p := 0; p < 6; p++ {
		if got, want := recovered.PartitionChecksum(p), e.DB(0).PartitionChecksum(p); got != want {
			t.Fatalf("partition %d: recovered state %x != live state %x", p, got, want)
		}
	}
}

// TestLogFilesCoverEveryWrite checks that the union of a full replica's
// worker logs (its own commits) and applier logs (replicated commits)
// contains an entry for every record the live database holds beyond the
// initial load.
func TestLogFilesCoverEveryWrite(t *testing.T) {
	dir := t.TempDir()
	s := rt.NewSim()
	wl := ycsb.New(ycsb.Config{
		Partitions:          4,
		RecordsPerPartition: 64,
		CrossPct:            30,
	})
	e := New(Config{
		RT:             s,
		Nodes:          2,
		WorkersPerNode: 2,
		Workload:       wl,
		Iteration:      2 * time.Millisecond,
		LogDir:         dir,
		Seed:           4,
	})
	s.Run(20 * time.Millisecond)
	e.Freeze()
	s.Run(s.Now() + 10*time.Millisecond)
	s.Stop()
	if err := e.CloseLogs(); err != nil {
		t.Fatal(err)
	}

	logged := map[storage.Key]uint64{}
	for _, path := range e.LogFiles(0) {
		entries, err := readAll(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, en := range entries {
			if en.Kind != 1 { // writes only
				continue
			}
			if en.TID > logged[en.Key] {
				logged[en.Key] = en.TID
			}
		}
	}
	if len(logged) == 0 {
		t.Fatal("no write entries logged")
	}
	// Every record whose TID is beyond the load epoch must be logged
	// with exactly that TID.
	checked := 0
	for p := 0; p < 4; p++ {
		e.DB(0).Table(0).Partition(p).Range(func(key storage.Key, tid uint64, val []byte) bool {
			if storage.TIDEpoch(tid) <= 1 {
				return true // initial load
			}
			if logged[key] != tid {
				t.Fatalf("key %v: live TID %s, logged TID %s",
					key, storage.FormatTID(tid), storage.FormatTID(logged[key]))
			}
			checked++
			return true
		})
	}
	if checked == 0 {
		t.Fatal("no post-load records to check")
	}
}

func readAll(path string) ([]*wal.Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := wal.NewReader(f)
	var out []*wal.Entry
	for {
		e, err := r.Next()
		if err != nil {
			return out, nil
		}
		out = append(out, e)
	}
}

// TestCheckpointPlusLogRecovery runs the engine with the dedicated
// checkpointing process (§4.5.1) and rebuilds the full replica from the
// latest fuzzy checkpoint plus the logs; the Thomas write rule corrects
// any newer versions the fuzzy scan captured.
func TestCheckpointPlusLogRecovery(t *testing.T) {
	dir := t.TempDir()
	s := rt.NewSim()
	wl := ycsb.New(ycsb.Config{
		Partitions:          4,
		RecordsPerPartition: 64,
		CrossPct:            20,
	})
	e := New(Config{
		RT:              s,
		Nodes:           2,
		WorkersPerNode:  2,
		Workload:        wl,
		Iteration:       2 * time.Millisecond,
		LogDir:          dir,
		Checkpoint:      true,
		CheckpointEvery: 10 * time.Millisecond,
		Seed:            13,
	})
	s.Run(45 * time.Millisecond)
	e.Freeze()
	s.Run(s.Now() + 15*time.Millisecond)
	s.Stop()
	if err := e.CloseLogs(); err != nil {
		t.Fatal(err)
	}
	ckpt := e.LastCheckpoint(0)
	if ckpt == "" {
		t.Fatal("checkpointer never ran")
	}
	if epoch, err := wal.CheckpointEpoch(ckpt); err != nil || epoch < 2 {
		t.Fatalf("checkpoint epoch %d err=%v", epoch, err)
	}

	// Recover from checkpoint + logs onto an EMPTY database: the
	// checkpoint supplies the base state (including the initial load),
	// the logs supply everything after it.
	recovered := wl.BuildDB(4, nil)
	if _, _, err := wal.Recover(recovered, ckpt, e.LogFiles(0)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if got, want := recovered.PartitionChecksum(p), e.DB(0).PartitionChecksum(p); got != want {
			t.Fatalf("partition %d: recovered %x != live %x", p, got, want)
		}
	}
}

// TestReadCommittedCommitsWithoutValidation checks §3's read-committed
// mode: the single-master phase skips read validation, so contended
// cross-partition transactions stop aborting.
func TestReadCommittedCommitsWithoutValidation(t *testing.T) {
	run := func(rc bool) (committed, aborted int64) {
		s := rt.NewSim()
		wl := ycsb.New(ycsb.Config{
			Partitions:          4,
			RecordsPerPartition: 8, // tiny: heavy contention on the master
			CrossPct:            100,
		})
		e := New(Config{
			RT:             s,
			Nodes:          2,
			WorkersPerNode: 2,
			Workload:       wl,
			Iteration:      2 * time.Millisecond,
			ReadCommitted:  rc,
			Seed:           5,
		})
		s.Run(30 * time.Millisecond)
		st := e.Stats()
		s.Stop()
		return st.Committed, st.Aborted
	}
	serCommitted, serAborted := run(false)
	rcCommitted, rcAborted := run(true)
	if serCommitted == 0 || rcCommitted == 0 {
		t.Fatal("no commits")
	}
	if serAborted == 0 {
		t.Fatal("expected OCC validation aborts under contention at serializability")
	}
	if rcAborted >= serAborted {
		t.Fatalf("read committed must abort less: %d vs %d", rcAborted, serAborted)
	}
}
