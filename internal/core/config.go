// Package core implements the STAR engine itself: a cluster of f full
// replicas and k partial replicas that alternates between a partitioned
// phase (single-partition transactions run serially on every partition's
// master, no concurrency control) and a single-master phase (deferred
// cross-partition transactions run under Silo-style OCC on one full
// replica), separated by replication fences that make every phase switch
// an epoch boundary and a group commit (paper §3–§5).
package core

import (
	"io"
	"time"

	"star/internal/replication"
	"star/internal/rt"
	"star/internal/simnet"
	"star/internal/transport"
	"star/internal/workload"
)

// CostModel assigns virtual CPU costs to engine actions so the
// simulation runtime reproduces compute/communication ratios; on the
// real runtime these are ignored (real work takes real time).
type CostModel struct {
	// Read is the CPU cost of one record read (hash probe + copy).
	Read time.Duration
	// Write is the CPU cost of one buffered write's commit application.
	Write time.Duration
	// TxnOverhead is per-transaction bookkeeping (generation, TID, ...).
	TxnOverhead time.Duration
	// MsgHandling is the CPU cost of handling one network message.
	MsgHandling time.Duration
	// ApplyEntry is the CPU cost of applying one replication entry.
	ApplyEntry time.Duration
	// LogPerKB is the CPU+IO cost per KiB written to the recovery log.
	LogPerKB time.Duration
}

// DefaultCosts returns the cost model calibrated so 4-node sim
// throughput lands near the paper's absolute numbers (§7.1).
func DefaultCosts() CostModel {
	return CostModel{
		Read:        900 * time.Nanosecond,
		Write:       350 * time.Nanosecond,
		TxnOverhead: 1200 * time.Nanosecond,
		MsgHandling: 1500 * time.Nanosecond,
		ApplyEntry:  400 * time.Nanosecond,
		LogPerKB:    2 * time.Microsecond,
	}
}

// Config parameterises a STAR cluster.
type Config struct {
	RT             rt.Runtime
	Nodes          int // f + k
	FullReplicas   int // f (≥1); node ids [0,f) hold full copies
	WorkersPerNode int
	Workload       workload.Workload
	Net            simnet.Config

	// Transport overrides the built-in simulated network: when non-nil
	// the engine sends and receives on it (endpoints 0..Nodes-1 are the
	// nodes, endpoint Nodes is the coordinator) and Net is ignored.
	// Multi-process clusters pass a tcpnet.Network here.
	Transport transport.Transport

	// LocalNodes restricts which node ids this process hosts (nil =
	// all of them, the single-process default). Remote nodes are
	// reachable only through Transport; Engine methods that inspect
	// node state (DB, Node, CheckReplicaConsistency, LogFiles) cover
	// local nodes only.
	LocalNodes []int

	// LocalCoordinator runs the phase coordinator in this process.
	// Ignored (always true) when LocalNodes is nil; exactly one process
	// of a multi-process cluster must set it.
	LocalCoordinator bool

	// Members lists the node ids that are live cluster members at boot
	// (nil = every id in [0,Nodes)). Nodes is the provisioned capacity:
	// every id gets a transport endpoint, but only members hold data,
	// master partitions, and run phases. Dark slots join later through
	// the admin API (AdminJoin) and catch up at an epoch fence.
	Members []int

	// ClientAddrs lists every slot's client front-door address
	// (host:port), indexed by node id, for AdminTopologyGet responses —
	// how clients discover the doors of nodes added after they dialed.
	// Empty entries mean "no front door on that slot".
	ClientAddrs []string

	// Iteration is the phase-switch iteration time e (τp+τs); the paper
	// defaults to 10ms.
	Iteration time.Duration

	// SyncRepl makes the single-master phase hold write locks until all
	// replicas ack each transaction's writes (the SYNC STAR baseline of
	// Fig 15a). Default is asynchronous replication + fence.
	SyncRepl bool

	// HybridRepl enables operation replication in the partitioned phase
	// (STAR w/ Hybrid Rep. in Fig 15a); otherwise whole rows are shipped
	// in both phases.
	HybridRepl bool

	// Logging enables per-worker value logging with fence flushes; its
	// virtual cost is LogPerKB (Fig 15b).
	Logging bool

	// LogDir, when non-empty, additionally writes real recovery-log
	// files (one per worker and per applier thread, §4.5.1) under this
	// directory; wal.Recover can rebuild a node's database from them
	// (§4.5.3 case 4). Implies Logging.
	LogDir string

	// Checkpoint enables a dedicated checkpointing process per node
	// (§4.5.1): every CheckpointEvery (default 10 iterations) it writes a
	// fuzzy snapshot to LogDir, rotates every logger onto a fresh
	// segment, and deletes segments (and the superseded checkpoint)
	// covered by the new snapshot — restart replay stays bounded by
	// checkpoint cadence instead of run length. Requires LogDir.
	Checkpoint      bool
	CheckpointEvery time.Duration

	// ReadCommitted runs single-master transactions under READ COMMITTED
	// instead of serializability (§3: read validation is skipped).
	ReadCommitted bool

	// SnapshotReads executes read-only transactions (txn.IsReadOnly)
	// against the latest epoch-fenced replica state on whatever node
	// generated them, instead of routing them to the master: each read
	// resolves to the record's pre-epoch version when the record was
	// written in the in-flight epoch, which is exactly the consistent
	// snapshot the last replication fence installed on every replica
	// (SCAR-style consistent reads from asynchronously replicated state).
	// A node that does not hold every partition the transaction touches
	// falls back to master routing (counted in Stats as
	// snapshot_fallbacks). Results release immediately — snapshot reads
	// observe only group-committed state, so they skip the group-commit
	// wait entirely.
	SnapshotReads bool

	// Trace, when non-nil, receives one JSON line per committed epoch
	// from the coordinator (core.TraceEvent: epoch, phase kind, phase and
	// fence durations, per-node commit deltas, backlog, fault-injection
	// counters, topology version). Only the process hosting the
	// coordinator emits; writes happen on the coordinator goroutine
	// between fences, off every hot path. star-node -trace points this at
	// a file; the chaos/gc soaks at an in-memory buffer.
	Trace io.Writer

	Cost CostModel
	Seed int64

	// FlushEvery bounds replication batch size in entries (0 = no entry
	// bound: batches grow to FlushBytes or the epoch fence). The seed
	// behaviour — one small message every 16 writes — is FlushEvery: 16
	// with FlushBytes: -1.
	FlushEvery int

	// FlushBytes bounds replication batch size in modelled wire bytes.
	// 0 selects DefaultFlushBytes; negative disables the byte bound.
	// Together with the fence flush this makes a partitioned-phase epoch
	// ship O(destinations) envelopes instead of O(writes) messages.
	FlushBytes int

	// FlushPolicy selects how the byte threshold evolves: FlushAdaptive
	// (the default) re-sizes each destination's threshold every epoch
	// from the previous epoch's measured write volume, so high-volume
	// streams grow their envelopes past FlushBytes and idle streams
	// shrink back toward the floor; FlushFixed keeps FlushBytes as-is.
	FlushPolicy FlushPolicy
}

// FlushPolicy selects how the replication flush threshold is sized.
type FlushPolicy uint8

const (
	// FlushAdaptive sizes the threshold from the previous epoch's
	// measured per-destination write volume, starting at FlushBytes and
	// clamped to replication's adaptive bounds.
	FlushAdaptive FlushPolicy = iota
	// FlushFixed uses FlushBytes as a fixed threshold (the pre-adaptive
	// behaviour; bench comparisons use it for reproducible envelopes).
	FlushFixed
)

// DefaultFlushBytes is the default replication batch byte bound: large
// enough to amortise per-message routing cost over dozens of entries
// (paper-scale TPC-C ships ~8x fewer messages per commit than 16-entry
// flushing), small enough that replica application keeps overlapping
// the phase instead of bursting into the fence drain.
const DefaultFlushBytes = 16 << 10

func (c Config) withDefaults() Config {
	if c.FullReplicas == 0 {
		c.FullReplicas = 1
	}
	if c.LogDir != "" {
		c.Logging = true
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 100 * time.Millisecond
	}
	if c.WorkersPerNode == 0 {
		c.WorkersPerNode = 4
	}
	if c.Iteration == 0 {
		c.Iteration = 10 * time.Millisecond
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCosts()
	}
	if c.FlushBytes == 0 {
		c.FlushBytes = DefaultFlushBytes
	}
	if c.Net.Nodes == 0 {
		c.Net = simnet.Config{
			Nodes:   c.Nodes + 1, // +1 endpoint for the coordinator
			Latency: 50 * time.Microsecond,
			Jitter:  10 * time.Microsecond,
			// ~4.8 Gbit/s, as measured on the paper's EC2 cluster.
			Bandwidth: 600e6,
			Seed:      c.Seed,
		}
	}
	return c
}

// streamLimits converts the flush knobs into replication stream limits
// (a negative FlushBytes disables the byte bound, which also disables
// adaptation — there is no threshold to adapt).
func (c Config) streamLimits() replication.Limits {
	lim := replication.Limits{Entries: c.FlushEvery}
	if c.FlushBytes > 0 {
		lim.Bytes = c.FlushBytes
		lim.Adaptive = c.FlushPolicy == FlushAdaptive
	}
	return lim
}

// NumPartitions returns the cluster partition count (workers == owned
// partitions per node, matching §7.1: "the number of partitions equal to
// the total number of worker threads").
func (c Config) NumPartitions() int { return c.Nodes * c.WorkersPerNode }

// MasterOf returns the partition's mastering node in the partitioned
// phase (block assignment: node i masters [i*w, (i+1)*w)).
func (c Config) MasterOf(p int) int { return p / c.WorkersPerNode }

// SecondaryOf returns the partial replica that stores partition p as a
// secondary when p is mastered by a full-replica node; partitions
// mastered by partial nodes are already duplicated on the full replicas.
// Returns -1 when no extra copy is needed. Together the partial replicas
// hold a complete copy of the database (paper Fig 2).
func (c Config) SecondaryOf(p int) int {
	m := c.MasterOf(p)
	if m >= c.FullReplicas {
		return -1 // full replicas already duplicate it
	}
	k := c.Nodes - c.FullReplicas
	if k <= 0 {
		return -1
	}
	return c.FullReplicas + p%k
}

// HoldersOf returns every node that stores partition p.
func (c Config) HoldersOf(p int) []int {
	holders := make([]int, 0, c.FullReplicas+2)
	for i := 0; i < c.FullReplicas; i++ {
		holders = append(holders, i)
	}
	if m := c.MasterOf(p); m >= c.FullReplicas {
		holders = append(holders, m)
	}
	if s := c.SecondaryOf(p); s >= 0 {
		holders = append(holders, s)
	}
	return holders
}

// HoldsMask returns the partition residency mask for a node.
func (c Config) HoldsMask(node int) []bool {
	n := c.NumPartitions()
	mask := make([]bool, n)
	for p := 0; p < n; p++ {
		if node < c.FullReplicas {
			mask[p] = true
			continue
		}
		if c.MasterOf(p) == node || c.SecondaryOf(p) == node {
			mask[p] = true
		}
	}
	return mask
}

// coordID is the simnet endpoint index used by the phase coordinator.
func (c Config) coordID() int { return c.Nodes }
