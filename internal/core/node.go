package core

import (
	"sync"
	"sync/atomic"
	"time"

	"star/internal/metrics"
	"star/internal/replication"
	"star/internal/rt"
	"star/internal/storage"
	"star/internal/transport"
	"star/internal/txn"
	"star/internal/wal"
)

// drainPoll is how often a node re-checks its replication counters while
// waiting for a fence drain.
const drainPoll = 20 * time.Microsecond

// node is one STAR server: its copy of the database, its workers, and a
// router process that owns the network inbox (actor-style: replication
// application, fence participation and request routing all happen here).
type node struct {
	e       *Engine
	id      int
	db      *storage.DB
	tracker *replication.Tracker
	workers []*worker

	// masterQ holds deferred cross-partition requests (meaningful on the
	// designated master).
	masterQ rt.Chan

	// Cluster view, updated by coordinator messages. epoch is atomic
	// because the applier processes and the checkpointer read it while
	// the router advances it at phase starts; the exact epoch observed
	// mid-transition is immaterial (see applyBatch's comment), but the
	// access must not race.
	epoch   atomic.Uint64
	phase   Phase
	master  int
	masters []int32 // partition → mastering node
	failed  []bool

	// curMaster mirrors master for readers outside the router (the
	// client-session gate routes write forwards by it).
	curMaster atomic.Int32

	// gate is the node's client-session layer (star-client front door).
	gate *ClientGate

	// replLag is this node's registry gauge for replication backlog: the
	// entries still unapplied at the moment the fence drain began
	// (repl_lag{node="<id>"}). A scrape mid-phase sees the last fence's
	// starting backlog — the drain work the fence had to absorb.
	replLag *metrics.Gauge

	// replTargets maps partition → replica destinations for writes from
	// this node (holders minus self and failed nodes). Precomputed at
	// construction and rebuilt by the router at fences when the failure
	// set changes, so the per-entry commit path never allocates a target
	// list. Workers read it only between the phase-start command and
	// their done report, which the router's rebuild points respect.
	replTargets [][]int

	// Fence bookkeeping.
	workersDone  int
	drainAborted bool
	draining     bool

	// Phase monitors, accumulated by the router from the workers' done
	// reports (reset each phase; the workers shard them locally so the
	// commit path takes no node mutex).
	phaseCommitted int64
	genSingle      int64
	genCross       int64

	// mu guards lastCheckpoint (written by the checkpoint process, read
	// by Engine.LastCheckpoint).
	mu sync.Mutex

	// snapPending tracks the (table, partition) snapshot messages still
	// outstanding during a rejoin catch-up. A set, not a counter: the
	// request/snapshot plane tolerates duplicate delivery (re-dialled
	// links, chaos testing), and a duplicated snapshot must not make the
	// node report recovery-done while other partitions are still in
	// flight — the coordinator would align its counters around a copy
	// that is missing data.
	snapPending map[uint64]bool

	// appliers parallelise replication replay (SiloR-style): entries are
	// sharded by partition so operation entries keep their per-partition
	// FIFO order.
	appliers []rt.Chan

	// Real recovery-log writers (LogDir mode): one per applier plus the
	// router's own (which carries the epoch marks).
	routerLog   *wal.Logger
	applierLogs []*wal.Logger
	// lastCheckpoint (guarded by mu) is the newest fuzzy checkpoint path.
	lastCheckpoint string
}

// applierBatch is one applier's share of a replication batch. epoch is
// the sender's epoch stamp: entries apply (and save their revert/fence
// snapshots) under the epoch they were committed in, not the receiver's
// possibly-lagging view.
type applierBatch struct {
	from    int
	epoch   uint64
	entries []replication.Entry
}

// workerDoneMsg is sent node-locally when a worker finishes a phase,
// carrying the worker's monitor shard for the router to fold into the
// node's phase totals.
type workerDoneMsg struct {
	Worker    int
	Committed int64
	GenSingle int64
	GenCross  int64
}

func (workerDoneMsg) Size() int { return 32 }

// syncBatch wraps a replication batch that must be acknowledged before
// the writer releases its locks (SYNC STAR).
type syncBatch struct {
	Batch   *msgReplBatch
	Worker  int
	Seq     uint64
	ReplyTo int
}

func (s syncBatch) Size() int { return s.Batch.Size() + 24 }

// msgResetCounters aligns a rejoined node's applied counters with the
// cluster's cumulative sent counts (its snapshot subsumes them).
type msgResetCounters struct{ Applied []int64 }

func (m msgResetCounters) Size() int { return 8 + 8*len(m.Applied) }

// msgRecoveryDone tells the coordinator a rejoining node finished its
// snapshot catch-up. Sent carries the node's cumulative per-destination
// replication counts so the coordinator can align every SURVIVOR's
// applied counter with it: entries the victim had counted as sent but
// the network dropped at the crash (in-flight envelopes, post-cut
// flushes) would otherwise leave a permanent sent>applied gap that
// wedges the first post-rejoin fence. A freshly restarted process
// reports near-zero counts, which aligns the survivors DOWN — correct
// too: its pre-crash sends are subsumed by the surviving state.
type msgRecoveryDone struct {
	Node int
	Sent []int64
}

func (m msgRecoveryDone) Size() int { return 8 + 8*len(m.Sent) }

// msgAlignCounters sets the receiver's applied-from-Src counter to
// exactly Applied (rejoin reconciliation; see msgRecoveryDone.Sent).
type msgAlignCounters struct {
	Src     int
	Applied int64
}

func (msgAlignCounters) Size() int { return 24 }

// msgStartRecovery orders a rejoining node to copy the listed partitions
// from the given healthy holders.
type msgStartRecovery struct {
	Parts []int32
	From  []int32
}

func (m msgStartRecovery) Size() int { return 8 + 8*len(m.Parts) }

func (n *node) inbox() rt.Chan { return n.e.net.Inbox(n.id) }

func (n *node) routerLoop() {
	in := n.inbox()
	for {
		n.handle(in.Recv())
	}
}

func (n *node) handle(m any) {
	r := n.e.cfg.RT
	switch msg := m.(type) {
	case *msgReplBatch:
		r.Compute(n.e.cfg.Cost.MsgHandling)
		n.applyBatch(msg)
	case syncBatch:
		r.Compute(n.e.cfg.Cost.MsgHandling)
		// Synchronous replication: the ack may only be sent after the
		// entries are durably applied, so bypass the async appliers.
		n.applyEntries(msg.Batch.From, n.batchEpoch(msg.Batch), msg.Batch.Entries)
		n.e.net.Send(n.id, msg.ReplyTo, transport.Control, msgReplAck{Worker: msg.Worker, Seq: msg.Seq})
	case msgStartPhase:
		n.startPhase(msg)
	case msgFenceDrain:
		n.drainFence(msg)
	case msgDefer:
		n.e.deferred.Inc()
		// Admission control: when the deferred queue is full the request
		// is rejected (clients re-submit later); a blocking enqueue here
		// would wedge the router that the single-master phase depends on.
		if !n.masterQ.TrySend(msg.Req) {
			n.e.rejected.Inc()
		}
	case ClientReq:
		r.Compute(n.e.cfg.Cost.MsgHandling)
		n.e.deferred.Inc()
		// Same admission control as msgDefer, but the shed is explicit:
		// the originating session gets a busy response instead of a
		// silent drop, so clients back off instead of timing out.
		if !n.masterQ.TrySend(msg.Req) {
			n.e.rejected.Inc()
			n.respondClient(msg.Req, ClientResp{Status: StatusBusy})
		}
	case ClientResp:
		if n.gate != nil {
			n.gate.deliver(msg)
		}
	case msgReplAck:
		n.workers[msg.Worker].resp.Send(msg)
	case workerDoneMsg:
		n.phaseCommitted += msg.Committed
		n.genSingle += msg.GenSingle
		n.genCross += msg.GenCross
		n.workersDone++
		if n.workersDone == len(n.workers) {
			n.reportPhaseDone()
		}
	case msgRevert:
		n.revert(msg)
	case msgResetCounters:
		for src, v := range msg.Applied {
			if d := v - n.tracker.Applied(src); d > 0 {
				n.tracker.AddApplied(src, d)
			}
		}
	case msgAlignCounters:
		// Src came off the wire: a corrupt frame must not panic the
		// router with an out-of-range counter index.
		if msg.Src >= 0 && msg.Src < n.tracker.Nodes() {
			n.tracker.SetApplied(msg.Src, msg.Applied)
		}
	case msgSnapshotReq:
		n.serveSnapshot(msg)
	case *msgSnapshot:
		n.applySnapshot(msg)
	case msgStartRecovery:
		n.startRecovery(msg)
	case msgUpdateMasters:
		copy(n.masters, msg.Masters)
	case msgTopology:
		n.installTopology(msg)
	case AdminReq:
		n.serveAdmin(msg)
	case AdminResp:
		// A response routed back to a front-door submission hosted here.
		if n.gate != nil {
			n.gate.deliverAdmin(msg)
		}
	case msgHalt:
		n.e.haltCh.TrySend(struct{}{})
	default:
		panic("core: unknown message")
	}
}

// startRecovery fetches partition snapshots from healthy holders
// (§4.5.3 case 1: "it copies data from remote nodes and applies them to
// its database ... using the Thomas write rule").
func (n *node) startRecovery(m msgStartRecovery) {
	if len(m.Parts) == 0 {
		n.e.net.Send(n.id, n.e.cfg.coordID(), transport.Control, msgRecoveryDone{Node: n.id, Sent: n.tracker.SentVector()})
		return
	}
	// Materialise the partitions first: a joining node (or a member
	// gaining partitions in a planned migration) has never held them, and
	// applySnapshot skips unmaterialised partitions.
	for _, p := range m.Parts {
		n.db.SetHolds(int(p), true)
	}
	n.snapPending = make(map[uint64]bool)
	for ti := 0; ti < n.db.NumTables(); ti++ {
		if n.db.Table(storage.TableID(ti)).Replicated() {
			continue
		}
		for _, p := range m.Parts {
			n.snapPending[snapKey(storage.TableID(ti), int(p))] = true
		}
	}
	for i, p := range m.Parts {
		n.e.net.Send(n.id, int(m.From[i]), transport.Data, msgSnapshotReq{From: n.id, Part: int(p)})
	}
}

func snapKey(t storage.TableID, part int) uint64 {
	return uint64(t)<<32 | uint64(uint32(part))
}

// startPhase commits the previous epoch (revert info dropped, group-
// committed results released to clients) and kicks the workers.
func (n *node) startPhase(m msgStartPhase) {
	if m.ScriptTxns == 0 {
		// The deadline arrives as a phase budget relative to receipt
		// (processes do not share a clock origin — an absolute
		// coordinator-clock timestamp would make a restarted process
		// sleep out the skew and miss every phase). Localising it at the
		// ROUTER, not in the workers, keeps the old absolute semantics
		// within the process: a worker that dequeues the command late
		// sees a near-expired deadline and short-circuits instead of
		// running a full phase past the coordinator's grace.
		m.Deadline += n.e.cfg.RT.Now()
	}
	if n.routerLog != nil && m.Epoch > n.epoch.Load() && n.epoch.Load() > 0 {
		// The fence for the previous epoch completed: mark it durable.
		n.routerLog.AppendEpochMark(n.epoch.Load())
		n.routerLog.Flush(false)
	}
	// Commit everything up to (but not including) the epoch now starting:
	// replication can deliver the new epoch's first entries before this
	// command (different links), and they must stay revertable in case
	// the new epoch fails.
	n.db.CommitEpochBefore(m.Epoch)
	n.releaseResults()
	n.epoch.Store(m.Epoch)
	n.phase = m.Phase
	n.master = m.Master
	n.curMaster.Store(int32(m.Master))
	n.setFailed(m.Failed)
	n.workersDone = 0
	n.phaseCommitted, n.genSingle, n.genCross = 0, 0, 0
	for _, w := range n.workers {
		w.ctl.Send(m)
	}
}

// setFailed installs a new failure set, rebuilding the precomputed
// replica-target table only when it actually changed. Callers run on the
// router with the workers idle (phase start or revert), so workers
// observe a consistent table for the whole phase.
//
// A peer leaving the failure set (a rejoin) also revives this process's
// transport links to it: the coordinator only resets ITS OWN process's
// links in handleRejoins, and on a 3+ process cluster the other
// survivors' tcpnet links to a crashed-and-restarted peer are dead
// until someone tells the transport the peer is back (no-op on simnet
// and for peers whose links never died).
func (n *node) setFailed(failed []int) {
	changed := false
	for i := range n.failed {
		f := false
		for _, x := range failed {
			if x == i {
				f = true
				break
			}
		}
		if n.failed[i] != f {
			if n.failed[i] && !f {
				n.e.net.SetDown(i, false)
			}
			n.failed[i] = f
			changed = true
		}
	}
	if changed || n.replTargets == nil {
		n.rebuildReplTargets()
	}
}

// rebuildReplTargets recomputes partition → replica destinations from
// the installed topology (holders minus self and failed nodes).
func (n *node) rebuildReplTargets() {
	topo := n.e.topo.Load()
	if n.replTargets == nil {
		n.replTargets = make([][]int, topo.Partitions)
	}
	for p := range n.replTargets {
		dsts := n.replTargets[p][:0]
		for _, h := range topo.HoldersOf(p) {
			if h != n.id && !n.failed[h] {
				dsts = append(dsts, h)
			}
		}
		n.replTargets[p] = dsts
	}
}

// releaseResults observes group-commit latency for every transaction
// committed in the epoch that just closed, and releases the pending
// client responses: a ticketed commit's response (carrying its commit
// epoch as the session freshness token) may only leave once that fence
// completed cluster-wide, which is exactly what the next phase-start
// command certifies. It runs on the router while the workers idle
// between phases (their done reports happened-before this read; the
// next phase command happens-after the reset).
func (n *node) releaseResults() {
	now := int64(n.e.cfg.RT.Now())
	for _, w := range n.workers {
		for _, genAt := range w.pendingLat {
			n.e.latency.Observe(time.Duration(now - genAt))
		}
		w.pendingLat = w.pendingLat[:0]
		for _, pc := range w.pendingClient {
			n.e.net.Send(n.id, pc.origin, transport.Control,
				ClientResp{Ticket: pc.ticket, Status: StatusOK, Token: pc.epoch})
		}
		w.pendingClient = w.pendingClient[:0]
	}
}

// respondClient routes a response for a ticketed request back to its
// originating session gate. No-op for engine-internal requests.
func (n *node) respondClient(req *txn.Request, resp ClientResp) {
	if req.Ticket == 0 {
		return
	}
	resp.Ticket = req.Ticket
	n.e.net.Send(n.id, req.Origin, transport.Control, resp)
}

func (n *node) reportPhaseDone() {
	n.e.net.Send(n.id, n.e.cfg.coordID(), transport.Control, msgPhaseDone{
		Node:      n.id,
		Epoch:     n.epoch.Load(),
		Sent:      n.tracker.SentVector(),
		Committed: n.phaseCommitted,
		GenSingle: n.genSingle,
		GenCross:  n.genCross,
		Queued:    int64(n.masterQ.Len()),
	})
}

// drainFence waits until every replication entry the other nodes claim
// to have sent has been applied locally, then acks the coordinator.
// Incoming messages (including the outstanding batches themselves) keep
// being served while waiting. A revert aborts the drain.
func (n *node) drainFence(m msgFenceDrain) {
	if n.draining {
		panic("core: nested fence drain")
	}
	n.draining = true
	defer func() { n.draining = false }()
	// Observability: the backlog this drain starts with (how far the
	// appliers were behind when the fence arrived) and the wall time the
	// router stalls absorbing it.
	var lag int64
	for src, exp := range m.Expected {
		if d := exp - n.tracker.Applied(src); d > 0 {
			lag += d
		}
	}
	if n.replLag != nil {
		n.replLag.Set(lag)
	}
	start := n.e.cfg.RT.Now()
	defer func() { n.e.drainHist.Observe(n.e.cfg.RT.Now() - start) }()
	in := n.inbox()
	for !n.tracker.Drained(m.Expected) {
		if n.drainAborted {
			n.drainAborted = false
			return
		}
		if msg, ok := in.RecvTimeout(drainPoll); ok {
			n.handle(msg)
		}
	}
	if n.e.cfg.Logging {
		// Fence flush: logs are durable at every epoch boundary (§4.5.1).
		n.chargeLog(64)
	}
	n.e.net.Send(n.id, n.e.cfg.coordID(), transport.Control, msgFenceAck{Node: n.id, Epoch: m.Epoch})
}

// applyBatch shards a replication envelope across the node's applier
// processes by partition (value entries commute under the Thomas write
// rule; operation entries need per-partition FIFO, which sharding by
// partition preserves — batching keeps each worker's commit order
// within the envelope, and envelopes per link are FIFO).
//
// Entries apply under the SENDER's epoch stamp (b.Epoch): a peer's
// start-phase command can overtake this node's own on a different link,
// so the receiver's epoch view may lag by one — applying under the
// stamp keeps each record's revert snapshot (which doubles as the
// snapshot-read fence version) attributed to the epoch the write really
// belongs to. Streams never mix epochs in one envelope (SetEpoch
// flushes at the boundary). A zero stamp (ad-hoc test streams that
// predate epochs) falls back to the receiver's view.
func (n *node) applyBatch(b *msgReplBatch) {
	epoch := n.batchEpoch(b)
	shards := len(n.appliers)
	if shards == 0 {
		n.applyEntries(b.From, epoch, b.Entries)
		return
	}
	var per [][]replication.Entry
	per = make([][]replication.Entry, shards)
	for i := range b.Entries {
		sh := int(b.Entries[i].Part) % shards
		per[sh] = append(per[sh], b.Entries[i])
	}
	for sh, ents := range per {
		if len(ents) > 0 {
			n.appliers[sh].Send(applierBatch{from: b.From, epoch: epoch, entries: ents})
		}
	}
}

// batchEpoch resolves the epoch a replication envelope applies under.
func (n *node) batchEpoch(b *msgReplBatch) uint64 {
	if b.Epoch != 0 {
		return b.Epoch
	}
	return n.epoch.Load()
}

// applierLoop is one parallel replay thread.
func (n *node) applierLoop(idx int, ch rt.Chan) {
	var lg *wal.Logger
	if idx >= 0 && idx < len(n.applierLogs) {
		lg = n.applierLogs[idx]
	}
	for {
		ab := ch.Recv().(applierBatch)
		n.applyEntriesLogged(ab.from, ab.epoch, ab.entries, lg)
	}
}

func (n *node) applyEntries(from int, epoch uint64, entries []replication.Entry) {
	n.applyEntriesLogged(from, epoch, entries, nil)
}

func (n *node) applyEntriesLogged(from int, epoch uint64, entries []replication.Entry, lg *wal.Logger) {
	cost := n.e.cfg.Cost
	for i := range entries {
		en := &entries[i]
		row, err := replication.Apply(n.db, epoch, en, n.e.cfg.Logging)
		if err != nil {
			panic("core: replication apply: " + err.Error())
		}
		if n.e.cfg.Logging {
			sz := len(row) + len(en.Row) + 32
			n.chargeLog(sz)
		}
		if lg != nil {
			// §5: operation entries are transformed into whole rows
			// before logging, so recovery can replay in any order.
			if en.Absent {
				lg.AppendDelete(en.Table, en.Part, en.Key, en.TID)
			} else {
				if row == nil {
					row = en.Row
				}
				lg.AppendWrite(en.Table, en.Part, en.Key, en.TID, false, row)
			}
		}
	}
	if lg != nil {
		lg.Flush(false)
	}
	n.e.cfg.RT.Compute(time.Duration(len(entries)) * cost.ApplyEntry)
	n.tracker.AddApplied(from, int64(len(entries)))
}

// chargeLog accounts log bytes and models their virtual IO/CPU cost.
func (n *node) chargeLog(bytes int) {
	n.e.logBytes.Add(int64(bytes))
	n.e.cfg.RT.Compute(time.Duration(float64(bytes) / 1024 * float64(n.e.cfg.Cost.LogPerKB)))
}

// revert rolls the in-flight epoch back after a failure (paper Fig 6)
// and installs the post-failure partition mastership.
func (n *node) revert(m msgRevert) {
	n.db.RevertEpoch(m.Epoch)
	for _, w := range n.workers {
		w.pendingLat = w.pendingLat[:0] // uncommitted: results never released
		// Reverted ticketed commits rolled back with the epoch; their
		// clients time out and retry rather than receive a token for a
		// fence that never completed.
		w.pendingClient = w.pendingClient[:0]
	}
	n.setFailed(m.Failed)
	copy(n.masters, m.NewMasters)
	// Re-mastered partitions may need local materialisation on a full
	// replica that already holds them (no-op) or a partial that was the
	// secondary (also already holds them); nothing to copy (§4.5.3:
	// re-mastering transfers no data).
	if n.draining {
		n.drainAborted = true
	}
}

// ownedPartitions returns the partitions this node currently masters,
// for the given worker index (striped across workers).
func (n *node) ownedPartitions(workerIdx int) []int {
	var out []int
	for p := 0; p < len(n.masters); p++ {
		if int(n.masters[p]) == n.id && p%len(n.workers) == workerIdx {
			out = append(out, p)
		}
	}
	return out
}

// serveSnapshot streams a partition's records to a recovering node, one
// message per table, as encoded row images.
func (n *node) serveSnapshot(m msgSnapshotReq) {
	for ti := 0; ti < n.db.NumTables(); ti++ {
		tbl := n.db.Table(storage.TableID(ti))
		if tbl.Replicated() {
			continue
		}
		part := tbl.Partition(m.Part)
		if part == nil {
			continue
		}
		snap := &msgSnapshot{Table: tbl.ID(), Part: m.Part}
		part.Range(func(key storage.Key, tid uint64, val []byte) bool {
			snap.Keys = append(snap.Keys, key)
			snap.TIDs = append(snap.TIDs, tid)
			snap.Rows = append(snap.Rows, append([]byte(nil), val...))
			return true
		})
		n.e.net.Send(n.id, m.From, transport.Data, snap)
	}
}

func (n *node) applySnapshot(m *msgSnapshot) {
	tbl := n.db.Table(m.Table)
	part := tbl.Partition(m.Part)
	if part == nil {
		return
	}
	epoch := n.epoch.Load()
	for i, key := range m.Keys {
		rec := part.GetOrCreate(key, epoch)
		_, first, inserted, _ := rec.ApplyValueThomas(epoch, m.TIDs[i], m.Rows[i], false)
		if first {
			// Catch-up writes must be registered for revert exactly like
			// replication applies: if THIS catch-up is abandoned (a lost
			// snapshot frame, a re-crash) the next attempt starts with a
			// wildcard revert, and an unregistered row would survive it
			// with the donor's TID while its secondary-index entries (pend-
			// tracked) are tombstoned — the retried snapshot then loses the
			// Thomas race against the leftover row and never revives the
			// index entries, leaving the replica permanently diverged.
			part.MarkDirty(rec, epoch)
		}
		if inserted {
			// Snapshot catch-up restores secondary-index entries along
			// with the rows they cover (the rejoin wildcard revert
			// tombstoned the victim's own uncommitted entries).
			tbl.NoteInserted(m.Part, key, m.Rows[i], epoch)
		}
	}
	// The rows themselves applied idempotently above (Thomas write rule);
	// only the first copy of a (table, partition) snapshot advances the
	// catch-up accounting.
	if !n.snapPending[snapKey(m.Table, m.Part)] {
		return
	}
	// Removal sweep: a row the cluster deleted (and reclaimed) while this
	// node was down is simply missing from the donor's snapshot, so
	// additive catch-up alone would leave it alive here forever. Any
	// present local row the snapshot does not mention is deleted under its
	// own TID — a genuinely newer write still beats the tombstone by the
	// Thomas rule. Guarded by the pending check above: a duplicate
	// (re-delivered, stale) snapshot must not delete rows inserted since
	// the first copy applied.
	seen := make(map[storage.Key]struct{}, len(m.Keys))
	for _, key := range m.Keys {
		seen[key] = struct{}{}
	}
	var stale []storage.Key
	var staleTIDs []uint64
	part.Range(func(key storage.Key, tid uint64, val []byte) bool {
		if _, ok := seen[key]; !ok {
			stale = append(stale, key)
			staleTIDs = append(staleTIDs, tid)
		}
		return true
	})
	for i, key := range stale {
		tbl.Delete(m.Part, key, epoch, staleTIDs[i])
	}
	delete(n.snapPending, snapKey(m.Table, m.Part))
	if len(n.snapPending) == 0 {
		n.e.net.Send(n.id, n.e.cfg.coordID(), transport.Control, msgRecoveryDone{Node: n.id, Sent: n.tracker.SentVector()})
	}
}
