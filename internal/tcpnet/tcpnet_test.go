package tcpnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"star/internal/faultnet"
	"star/internal/rt"
	"star/internal/transport"
	"star/internal/transport/conformance"
	"star/internal/wire"
)

// wtMsg is the conformance test message: its encoding pads the frame to
// exactly the modelled Size, so the byte-accounting assertions hold on
// a transport that counts real encoded lengths.
type wtMsg struct {
	id   int
	size int
}

func (m wtMsg) Size() int { return m.size }

func testCodec() *wire.Codec {
	c := wire.NewCodec()
	c.Register(1, wtMsg{},
		func(b []byte, m transport.Message) []byte {
			v := m.(wtMsg)
			b = wire.AppendVarint(b, int64(v.id))
			pad := v.size - wire.FrameOverhead - wire.VarintLen(int64(v.id))
			for i := 0; i < pad; i++ {
				b = append(b, 0xa5)
			}
			return b
		},
		func(b []byte) (transport.Message, []byte, error) {
			id, rest, err := wire.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			// The padding is the rest of the body: consumed entirely.
			return wtMsg{id: int(id), size: wire.FrameOverhead + wire.VarintLen(id) + len(rest)}, nil, nil
		})
	return c
}

// newCluster builds a 3-endpoint cluster with one Network ("process")
// per endpoint, all on loopback.
func newCluster(t *testing.T) *conformance.Cluster {
	t.Helper()
	r := rt.NewReal()
	const n = 3
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nets := make([]*Network, n)
	for i := range nets {
		nw, err := New(r, Config{
			Endpoints: addrs,
			Local:     []int{i},
			Codec:     testCodec(),
			Listener:  listeners[i],
			DialRetry: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("tcpnet.New: %v", err)
		}
		nets[i] = nw
	}
	// LIFO cleanup: stop the runtime first (unblocks inbox waiters),
	// then close the networks.
	t.Cleanup(func() {
		for _, nw := range nets {
			nw.Close()
		}
	})
	t.Cleanup(r.Stop)
	var wg sync.WaitGroup
	return &conformance.Cluster{
		Endpoint:  func(i int) transport.Transport { return nets[i] },
		Endpoints: n,
		Spawn: func(fn func()) {
			wg.Add(1)
			r.Go("conf", func() {
				defer wg.Done()
				fn()
			})
		},
		Settle: func() {
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("conformance processes did not settle")
			}
		},
		Msg:   func(id, size int) transport.Message { return wtMsg{id: id, size: size} },
		MsgID: func(m any) int { return m.(wtMsg).id },
		Yield: func() { r.Sleep(200 * time.Microsecond) },
	}
}

// TestConformance runs the shared transport contract suite — the same
// one simnet passes — over real loopback TCP with one process per
// endpoint.
func TestConformance(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Cluster { return newCluster(t) })
}

// TestCorruptStreamRejected feeds garbage into a listener and checks the
// reader rejects it (counter ticks, connection closes) without
// panicking, and that legitimate traffic still flows afterwards.
func TestCorruptStreamRejected(t *testing.T) {
	c := newCluster(t)
	nw := c.Endpoint(1).(*Network)

	// A frame with a plausible length prefix but corrupt body.
	conn, err := net.Dial("tcp", nw.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn.Write([]byte{8, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for nw.DecodeErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if nw.DecodeErrors() == 0 {
		t.Fatal("corrupt frame not counted as a decode error")
	}

	// An oversized length prefix must be rejected before allocation.
	conn2, err := net.Dial("tcp", nw.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn2.Write([]byte{0xff, 0xff, 0xff, 0xff})
	conn2.Close()

	// The transport still works.
	delivered := false
	c.Spawn(func() { c.Endpoint(0).Send(0, 1, transport.Data, wtMsg{id: 9, size: 32}) })
	c.Spawn(func() {
		if v, ok := nw.Inbox(1).RecvTimeout(5 * time.Second); ok && v.(wtMsg).id == 9 {
			delivered = true
		}
	})
	c.Settle()
	if !delivered {
		t.Fatal("transport wedged after corrupt stream")
	}
}

// TestDialBackoffBoundsAttempts pins the reconnect-storm fix: a link
// dialling a dead peer must back off exponentially, so the attempt count
// over the dial deadline stays an order of magnitude below the old
// fixed-interval schedule (deadline/retry attempts — 120 at these
// settings; the capped-exponential policy needs at most ~35 even with
// every jittered delay landing at its halved minimum).
func TestDialBackoffBoundsAttempts(t *testing.T) {
	r := rt.NewReal()
	t.Cleanup(r.Stop)

	// Reserve a loopback address, then free it: nothing listens there.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	nw, err := New(r, Config{
		Endpoints:    []string{ln.Addr().String(), deadAddr},
		Local:        []int{0},
		Codec:        testCodec(),
		Listener:     ln,
		DialTimeout:  100 * time.Millisecond,
		DialRetry:    5 * time.Millisecond,
		DialRetryMax: 50 * time.Millisecond,
		DialDeadline: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("tcpnet.New: %v", err)
	}
	t.Cleanup(func() { nw.Close() })

	// First send spawns the link's writer, which dials until the deadline.
	nw.Send(0, 1, transport.Data, wtMsg{id: 1, size: 32})

	// Wait for the dial deadline to expire and the link to go dead (the
	// queued frame is then drained as dropped).
	waitUntil := time.Now().Add(5 * time.Second)
	for nw.Dropped() == 0 && time.Now().Before(waitUntil) {
		time.Sleep(10 * time.Millisecond)
	}
	if nw.Dropped() == 0 {
		t.Fatal("link to dead peer never gave up")
	}

	attempts := nw.DialAttempts()
	if attempts < 3 {
		t.Fatalf("only %d dial attempts: retry loop did not run", attempts)
	}
	if attempts > 60 {
		t.Fatalf("%d dial attempts over a 600ms deadline: backoff is not in effect (fixed 5ms interval would make ~120)", attempts)
	}
}

// TestDeadLinkQueueByteCap pins that a link to a never-returning peer
// cannot grow its writer queue past LinkQueueBytes. The window under
// test: after a revival kick the writer is away in a patient re-dial
// (up to DialDeadline) and nothing drains the queue — without the byte
// cap, the frame-count channel cap alone would admit count×frame-size
// bytes of snapshots and deltas destined for a corpse.
func TestDeadLinkQueueByteCap(t *testing.T) {
	r := rt.NewReal()
	t.Cleanup(r.Stop)

	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	const cap = 4096 // bytes
	nw, err := New(r, Config{
		Endpoints:      []string{ln.Addr().String(), deadAddr},
		Local:          []int{0},
		Codec:          testCodec(),
		Listener:       ln,
		DialTimeout:    100 * time.Millisecond,
		DialRetry:      10 * time.Millisecond,
		DialRetryMax:   50 * time.Millisecond,
		DialDeadline:   300 * time.Millisecond,
		LinkQueueBytes: cap,
	})
	if err != nil {
		t.Fatalf("tcpnet.New: %v", err)
	}
	t.Cleanup(func() { nw.Close() })

	// Spawn the link and let its initial dial give up: the probe frame is
	// drained as dropped once the link turns dead.
	nw.Send(0, 1, transport.Control, wtMsg{id: 0, size: 32})
	waitUntil := time.Now().Add(5 * time.Second)
	for nw.Dropped() == 0 && time.Now().Before(waitUntil) {
		time.Sleep(10 * time.Millisecond)
	}
	if nw.Dropped() == 0 {
		t.Fatal("link to dead peer never gave up")
	}

	// Revival kick (the rejoin path): the writer leaves the drain loop
	// for a patient re-dial. Flood the dead link while nothing drains it.
	nw.SetDown(1, false)
	time.Sleep(30 * time.Millisecond)
	const flood = 2000
	const frameSize = 128
	for i := 0; i < flood; i++ {
		nw.Send(0, 1, transport.Data, wtMsg{id: i, size: frameSize})
	}
	shed := nw.ShedFrames()
	if shed == 0 {
		t.Fatalf("flooded %d×%dB into a %dB dead-link queue and nothing was shed", flood, frameSize, cap)
	}
	enqueued := nw.Messages(transport.Data)
	if shed+enqueued != flood {
		t.Fatalf("shed %d + enqueued %d != %d sends", shed, enqueued, flood)
	}
	if got := nw.Bytes(transport.Data); got > cap+frameSize {
		t.Fatalf("dead link holds %dB, cap is %dB", got, cap)
	}
	if nw.Dropped() < shed {
		t.Fatal("shed frames must also count as dropped")
	}
}

// TestConformanceFaultnetWrapped re-runs the contract suite with every
// endpoint's Network wrapped in a no-fault faultnet decorator: the
// fault-injection layer must be transparent over real sockets too.
func TestConformanceFaultnetWrapped(t *testing.T) {
	conformance.Run(t, func(t *testing.T) *conformance.Cluster {
		c := newCluster(t)
		r := rt.NewReal()
		t.Cleanup(r.Stop)
		inner := c.Endpoint
		wrapped := make([]transport.Transport, c.Endpoints)
		for i := range wrapped {
			wrapped[i] = faultnet.Wrap(r, inner(i), faultnet.Plan{})
		}
		c.Endpoint = func(i int) transport.Transport { return wrapped[i] }
		return c
	})
}
