package tcpnet

import (
	"net"
	"reflect"
	"testing"
	"time"

	"star/internal/core"
	"star/internal/rt"
	"star/internal/workload/tpcc"
)

func loopbackTPCC(nodes, workers int) tpcc.Config {
	return tpcc.Config{
		Warehouses:           nodes * workers,
		Districts:            2,
		CustomersPerDistrict: 300,
		Items:                2000,
	}
}

// loopbackFullMixTPCC is the standard-weighted four-transaction mix
// with cross-partition Stock-Level, so deferred Delivery batches and
// snapshot-served read-only scans both cross the real sockets.
func loopbackFullMixTPCC(nodes, workers int) tpcc.Config {
	cfg := loopbackTPCC(nodes, workers)
	cfg.SetFullMix()
	cfg.CrossPctStockLevel = 50
	return cfg
}

// TestLoopbackTPCCMatchesSimnet is the transport-equivalence
// integration test: a 2-node paper-mix TPC-C scripted run carried over
// real TCP sockets on 127.0.0.1 (two process-sides, each hosting one
// node, the first also hosting the coordinator) must produce exactly
// the committed-transaction count and post-fence replica checksums of
// the same run on the in-process simulated network with the same seed.
func TestLoopbackTPCCMatchesSimnet(t *testing.T) {
	loopbackMatchesSimnet(t, loopbackTPCC, false)
}

// TestLoopbackFullMixTPCCMatchesSimnet repeats the equivalence check
// with the standard-weighted full TPC-C mix and snapshot reads on:
// deferred Delivery batches and cross-partition Stock-Level parameters
// cross the real sockets, read-only transactions are served from each
// process's fence snapshot, and the result still matches simnet
// bit-for-bit.
func TestLoopbackFullMixTPCCMatchesSimnet(t *testing.T) {
	loopbackMatchesSimnet(t, loopbackFullMixTPCC, true)
}

func loopbackMatchesSimnet(t *testing.T, wcfg func(nodes, workers int) tpcc.Config, snapshotReads bool) {
	if testing.Short() {
		t.Skip("loopback TCP integration test skipped in -short")
	}
	const (
		nodes, workers = 2, 2
		txns           = 60
		seed           = 42
	)
	mkConfig := func(r rt.Runtime) core.Config {
		cfg := core.Config{
			RT:             r,
			Nodes:          nodes,
			WorkersPerNode: workers,
			Workload:       tpcc.New(wcfg(nodes, workers)),
			Seed:           seed,
			SnapshotReads:  snapshotReads,
		}
		return cfg
	}

	// Reference: the deterministic simnet run.
	sim := rt.NewSim()
	simRun := core.StartScripted(mkConfig(sim), core.Script{TxnsPerPartition: txns})
	sim.Run(sim.Now() + time.Hour)
	var want core.ScriptResult
	select {
	case want = <-simRun.Done():
	default:
		t.Fatal("simnet scripted run did not finish")
	}
	sim.Stop()
	if want.Err != "" {
		t.Fatalf("simnet run failed: %s", want.Err)
	}
	if want.Committed == 0 {
		t.Fatal("simnet run committed nothing")
	}

	// TCP cluster: two process-sides on loopback. Endpoints 0 and 1 are
	// the nodes; endpoint 2 is the coordinator, hosted with node 0.
	r := rt.NewReal()
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	endpoints := []string{addrs[0], addrs[1], addrs[0]}
	mkNet := func(localEPs []int, ln net.Listener) *Network {
		codec := core.NewWireCodec(tpcc.New(wcfg(nodes, workers)))
		nw, err := New(r, Config{Endpoints: endpoints, Local: localEPs, Codec: codec, Listener: ln})
		if err != nil {
			t.Fatalf("tcpnet.New: %v", err)
		}
		return nw
	}
	netA := mkNet([]int{0, 2}, listeners[0])
	netB := mkNet([]int{1}, listeners[1])

	cfgA := mkConfig(r)
	cfgA.Transport, cfgA.LocalNodes, cfgA.LocalCoordinator = netA, []int{0}, true
	cfgB := mkConfig(r)
	cfgB.Transport, cfgB.LocalNodes = netB, []int{1}

	runB := core.StartScripted(cfgB, core.Script{TxnsPerPartition: txns})
	runA := core.StartScripted(cfgA, core.Script{TxnsPerPartition: txns})

	var got core.ScriptResult
	select {
	case got = <-runA.Done():
	case <-time.After(3 * time.Minute):
		t.Fatal("TCP scripted run did not finish")
	}
	select {
	case <-runB.Done():
	case <-time.After(time.Minute):
		t.Fatal("node-only process never received the halt")
	}
	r.Stop()
	netA.Close()
	netB.Close()

	if got.Err != "" {
		t.Fatalf("TCP run failed: %s", got.Err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TCP run diverged from simnet run:\n got %+v\nwant %+v", got, want)
	}
}
