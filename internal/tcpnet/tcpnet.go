// Package tcpnet is the real-socket transport: the same
// transport.Transport contract as simnet, carried over TCP with the
// internal/wire binary encoding, so a STAR cluster can run as N OS
// processes.
//
// Topology: every endpoint (node or coordinator) is hosted by exactly
// one process; each process runs one listener and hosts one or more
// endpoints. A directed link (src → dst, dst remote) gets its own
// framed TCP stream with a dedicated writer goroutine, so per-link FIFO
// is exactly TCP's byte-stream order — the property STAR's operation
// replication relies on (§5). Local sends (both endpoints hosted here)
// bypass the wire, as on simnet.
//
// Encoding happens synchronously in Send (the message's buffers may be
// reused by the caller immediately after, matching simnet's value
// semantics); writing happens asynchronously on the link's writer.
// Receivers read each frame into its own buffer, decode (payload slices
// alias the buffer), and deliver to the destination endpoint's inbox.
// Byte accounting counts encoded frame lengths on the sending process;
// modelled Size() is used only for local (in-process) sends.
//
// tcpnet runs on the real runtime only: its goroutines block in socket
// I/O, which the simulated runtime cannot schedule.
package tcpnet

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"star/internal/backoff"
	"star/internal/rt"
	"star/internal/transport"
	"star/internal/wire"
)

// Config parameterises one process's view of the cluster network.
type Config struct {
	// Endpoints maps endpoint id → "host:port" of its hosting process's
	// listener. Endpoints sharing a process share an address.
	Endpoints []string
	// Local lists the endpoint ids this process hosts. They must all
	// map to the same address in Endpoints.
	Local []int
	// Codec encodes and decodes every message this cluster sends; all
	// processes must construct it identically (core.NewWireCodec).
	Codec *wire.Codec
	// Listener optionally supplies a pre-bound listener (tests bind
	// ":0" and exchange real addresses); when nil, New listens on the
	// local endpoints' configured address.
	Listener net.Listener
	// InboxCap bounds each local inbox (backpressure); 0 means 65536.
	InboxCap int
	// MaxFrame bounds accepted frame bodies; 0 means wire.MaxFrame.
	MaxFrame int
	// DialTimeout is the per-attempt dial timeout (default 1s).
	DialTimeout time.Duration
	// DialRetry is the FIRST retry delay while a peer is still starting
	// up (default 50ms); later attempts back off exponentially with
	// jitter up to DialRetryMax, so a whole cluster re-dialling one
	// restarted process does not hammer it in lockstep.
	DialRetry time.Duration
	// DialRetryMax caps the backoff between attempts (default 2s).
	DialRetryMax time.Duration
	// DialDeadline bounds the total time a link tries to connect before
	// declaring the peer unreachable and dropping its traffic
	// (default 15s).
	DialDeadline time.Duration
	// LinkQueueBytes caps the bytes queued on a DEAD link (default
	// 16 MiB). While a peer is down its writer can be away in a patient
	// re-dial for DialDeadline at a time (the rejoin path kicks links
	// repeatedly), not draining; the frame-count channel cap alone would
	// let a never-returning peer pin count×MaxFrame bytes per link.
	// Frames over the cap are shed (counted in ShedFrames and Dropped).
	LinkQueueBytes int64
}

func (c Config) withDefaults() Config {
	if c.InboxCap == 0 {
		c.InboxCap = 65536
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.MaxFrame
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = time.Second
	}
	if c.DialRetry == 0 {
		c.DialRetry = 50 * time.Millisecond
	}
	if c.DialRetryMax == 0 {
		c.DialRetryMax = 2 * time.Second
	}
	if c.DialRetryMax < c.DialRetry {
		c.DialRetryMax = c.DialRetry
	}
	if c.DialDeadline == 0 {
		c.DialDeadline = 15 * time.Second
	}
	if c.LinkQueueBytes == 0 {
		c.LinkQueueBytes = 16 << 20
	}
	return c
}

// link is one directed src→dst stream: a frame queue drained by a
// writer goroutine that owns the connection.
type link struct {
	out    chan []byte
	dead   atomic.Bool   // peer unreachable or stream broken: drop frames
	kick   chan struct{} // bounce signal: drop the conn and re-dial (cap 1)
	queued atomic.Int64  // bytes sitting in out (capped while dead)
}

// Network implements transport.Transport over TCP.
type Network struct {
	r     rt.Runtime
	cfg   Config
	ln    net.Listener
	local []bool
	down  []atomic.Bool

	inboxes []rt.Chan // nil for remote endpoints

	mu       sync.Mutex
	links    map[uint64]*link
	accepted map[net.Conn]struct{}
	dialed   map[net.Conn]struct{}

	bytesByClass [transport.NumClasses]atomic.Int64
	msgsByClass  [transport.NumClasses]atomic.Int64
	bytesFrom    []atomic.Int64
	dropped      atomic.Int64
	shed         atomic.Int64
	decodeErrs   atomic.Int64
	dialAttempts atomic.Int64

	stop   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

var _ transport.Transport = (*Network)(nil)

// New builds the process's network: it binds the listener, creates the
// local inboxes, and starts accepting peer streams. Outgoing links dial
// lazily on first send (with retry, so peer processes may start in any
// order).
func New(r rt.Runtime, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Codec == nil {
		return nil, fmt.Errorf("tcpnet: Config.Codec is required")
	}
	if len(cfg.Local) == 0 {
		return nil, fmt.Errorf("tcpnet: Config.Local is empty")
	}
	n := &Network{
		r:         r,
		cfg:       cfg,
		local:     make([]bool, len(cfg.Endpoints)),
		down:      make([]atomic.Bool, len(cfg.Endpoints)),
		inboxes:   make([]rt.Chan, len(cfg.Endpoints)),
		bytesFrom: make([]atomic.Int64, len(cfg.Endpoints)),
		links:     map[uint64]*link{},
		accepted:  map[net.Conn]struct{}{},
		dialed:    map[net.Conn]struct{}{},
		stop:      make(chan struct{}),
	}
	addr := ""
	for _, id := range cfg.Local {
		if id < 0 || id >= len(cfg.Endpoints) {
			return nil, fmt.Errorf("tcpnet: local endpoint %d out of range", id)
		}
		if addr == "" {
			addr = cfg.Endpoints[id]
		} else if cfg.Endpoints[id] != addr {
			return nil, fmt.Errorf("tcpnet: local endpoints map to different addresses (%s vs %s)",
				addr, cfg.Endpoints[id])
		}
		n.local[id] = true
		n.inboxes[id] = r.NewChan(cfg.InboxCap)
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
		}
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (n *Network) Addr() string { return n.ln.Addr().String() }

// Close shuts the listener and every link down. Pending frames may be
// lost (fail-stop semantics, like killing the process).
func (n *Network) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.stop)
	err := n.ln.Close()
	// Close both inbound and outbound connections: a reader blocked in a
	// socket read or a writer blocked in a full-window write cannot
	// observe stop from inside the syscall.
	n.mu.Lock()
	for conn := range n.accepted {
		conn.Close()
	}
	for conn := range n.dialed {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}

// Send implements transport.Transport. Remote sends encode the frame
// here (so the caller may reuse the message's buffers) and enqueue it on
// the link's writer.
func (n *Network) Send(src, dst int, class transport.Class, m transport.Message) {
	if src < 0 || src >= len(n.down) || dst < 0 || dst >= len(n.down) {
		// Endpoint ids can originate from the wire (e.g. a checksum
		// request's reply-to); an out-of-range id is a counted drop,
		// never a panic.
		n.dropped.Add(1)
		return
	}
	if n.down[src].Load() || n.down[dst].Load() {
		n.dropped.Add(1)
		return
	}
	if n.local[dst] {
		// In-process delivery: modelled size, no encoding.
		size := int64(m.Size())
		n.bytesByClass[class].Add(size)
		n.msgsByClass[class].Add(1)
		n.bytesFrom[src].Add(size)
		n.inboxes[dst].Send(m)
		return
	}
	frame, err := wire.AppendFrame(nil, src, dst, class, n.cfg.Codec, m)
	if err != nil {
		// A message type without a codec cannot cross a process boundary;
		// this is a wiring error, not input.
		panic("tcpnet: encode: " + err.Error())
	}
	l := n.link(src, dst)
	if l.dead.Load() {
		// Dead (or mid-revival) link: enqueue WITHOUT blocking — a
		// revival kick already queued (SetDown(node,false) immediately
		// followed by the rejoin messages) must still be able to deliver
		// this frame, but a sender must never wedge on a crashed peer
		// (the writer may be away in a patient re-dial and not draining).
		// While the writer is away nothing drains the queue, so the byte
		// cap is what keeps a never-returning peer from pinning
		// count×MaxFrame of memory on this link.
		if l.queued.Load()+int64(len(frame)) > n.cfg.LinkQueueBytes {
			n.shed.Add(1)
			n.dropped.Add(1)
			return
		}
		select {
		case l.out <- frame:
			l.queued.Add(int64(len(frame)))
			n.bytesByClass[class].Add(int64(len(frame)))
			n.msgsByClass[class].Add(1)
			n.bytesFrom[src].Add(int64(len(frame)))
		default:
			n.dropped.Add(1)
		}
		return
	}
	n.bytesByClass[class].Add(int64(len(frame)))
	n.msgsByClass[class].Add(1)
	n.bytesFrom[src].Add(int64(len(frame)))
	select {
	case l.out <- frame:
		l.queued.Add(int64(len(frame)))
	case <-n.stop:
	}
}

func (n *Network) link(src, dst int) *link {
	key := uint64(src)<<32 | uint64(uint32(dst))
	n.mu.Lock()
	l := n.links[key]
	if l == nil {
		l = &link{out: make(chan []byte, 4096), kick: make(chan struct{}, 1)}
		n.links[key] = l
		n.wg.Add(1)
		go n.runWriter(l, dst)
	}
	n.mu.Unlock()
	return l
}

// bounceLinks tells every link to dst to drop its connection and
// re-dial — the recovery path for a peer PROCESS that crashed and
// restarted: a dead link (peer away past the dial deadline) comes back
// to life, and a link still holding a stale connection to the peer's
// previous incarnation (whose first write would "succeed" into a
// reset socket and silently vanish) gets a fresh stream. The queue is
// untouched, so frames already enqueued for the rejoined peer — the
// rejoin protocol messages themselves — survive the bounce; the signal
// is idempotent (cap-1 channel), so repeated revivals of a healthy
// peer cost at most one extra dial.
func (n *Network) bounceLinks(dst int) {
	n.mu.Lock()
	for key, l := range n.links {
		if int(uint32(key)) != dst {
			continue
		}
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	n.mu.Unlock()
}

// runWriter owns one directed link for the process's lifetime: dial
// (with retry while the peer starts up), then stream frames in queue
// order. A broken stream is fail-stop: the link turns DEAD and frames
// are dropped as with a crashed peer — until a bounce (bounceLinks,
// the rejoin path) revives it with a fresh dial. Dropped frames count
// as dropped even though they were accounted at Send time: they were
// in flight when the peer died, exactly like simnet messages a
// deliverer drops after a node goes down. While dead the queue keeps
// draining so senders blocked in the enqueue select wake up — Send
// must only ever block for backpressure, never on a crashed peer.
func (n *Network) runWriter(l *link, dst int) {
	defer n.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	untrack := func() {
		if conn == nil {
			return
		}
		conn.Close()
		n.mu.Lock()
		delete(n.dialed, conn)
		n.mu.Unlock()
		conn, bw = nil, nil
	}
	adopt := func(c net.Conn) bool {
		if c == nil {
			return false
		}
		n.mu.Lock()
		n.dialed[c] = struct{}{}
		n.mu.Unlock()
		conn, bw = c, bufio.NewWriterSize(c, 64<<10)
		return true
	}
	// connect dials patiently (retry up to DialDeadline — peers may
	// still be starting up). Only used off the frame path: at link
	// birth and on kicks in the dead branch, where Send drops instead
	// of blocking.
	connect := func() bool { return adopt(n.dial(dst)) }
	defer untrack()
	// writeFrame streams one frame. A stream error is strictly
	// fail-stop: frames coalesced in bw but not yet flushed are
	// unrecoverable (silently resuming on a fresh connection would lose
	// them while the link still reports healthy — an undetectable
	// sent>applied gap that wedges the replication fence), so the link
	// turns dead, the loss is counted, and the failure/rejoin protocol
	// (whose SetDown(node,false) bounce is what revives links) decides
	// what happens next.
	writeFrame := func(frame []byte) bool {
		if _, err := bw.Write(frame); err == nil {
			// Coalesce: flush only when the queue has drained.
			if len(l.out) > 0 || bw.Flush() == nil {
				return true
			}
		}
		untrack()
		return false
	}
	// bounce drops the current connection (flushing it first — a
	// healthy peer receives everything already written, and a stale
	// connection to a crashed incarnation loses only in-flight frames,
	// the fail-stop loss) and re-dials with a single quick attempt: the
	// link is still marked alive here, so senders are enqueueing, and a
	// patient dial to a peer that is in fact down would
	// backpressure-block them. If the quick dial fails the link turns
	// dead and a later kick (in the dead branch, where senders drop
	// instead of blocking) retries patiently.
	bounce := func() bool {
		if bw != nil {
			bw.Flush()
		}
		untrack()
		return adopt(n.dialOnce(dst))
	}
	alive := connect()
	l.dead.Store(!alive)
	for {
		if alive {
			select {
			case frame := <-l.out:
				l.queued.Add(-int64(len(frame)))
				if !writeFrame(frame) {
					n.dropped.Add(1) // the frame died with the stream
					alive = false
					l.dead.Store(true)
				}
			case <-l.kick:
				alive = bounce()
				l.dead.Store(!alive)
			case <-n.stop:
				if bw != nil {
					bw.Flush()
				}
				return
			}
		} else {
			// Prefer a pending revival over draining, so frames enqueued
			// right after a SetDown(node, false) survive to the fresh
			// connection instead of racing the drop loop.
			select {
			case <-l.kick:
				alive = connect()
				l.dead.Store(!alive)
				continue
			default:
			}
			select {
			case frame := <-l.out:
				l.queued.Add(-int64(len(frame)))
				n.dropped.Add(1)
			case <-l.kick:
				alive = connect()
				l.dead.Store(!alive)
			case <-n.stop:
				return
			}
		}
	}
}

// dialOnce makes a single bounded connection attempt (the alive-path
// revival; see bounce in runWriter).
func (n *Network) dialOnce(dst int) net.Conn {
	n.dialAttempts.Add(1)
	conn, err := net.DialTimeout("tcp", n.cfg.Endpoints[dst], n.cfg.DialTimeout)
	if err != nil {
		return nil
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn
}

// dial retries dialOnce up to DialDeadline (peer processes may start in
// any order), backing off exponentially with jitter: a peer that is not
// up within the first few quick attempts is probably restarting or gone,
// and N processes × M links of fixed-interval retries against one
// recovering listener is a reconnect storm — each link alone would make
// DialDeadline/DialRetry attempts (300 at the defaults), synchronised
// across every link that observed the outage at the same moment. The
// capped-exponential schedule keeps the first reconnects fast and cuts
// the long-haul rate to ~1/DialRetryMax per link, desynchronised by the
// jitter.
func (n *Network) dial(dst int) net.Conn {
	deadline := time.Now().Add(n.cfg.DialDeadline)
	pol := backoff.Policy{Base: n.cfg.DialRetry, Max: n.cfg.DialRetryMax, Jitter: 0.5}
	for attempt := 0; ; attempt++ {
		if conn := n.dialOnce(dst); conn != nil {
			return conn
		}
		if time.Now().After(deadline) || n.closed.Load() {
			return nil
		}
		select {
		case <-time.After(pol.Delay(attempt, rand.Float64())):
		case <-n.stop:
			return nil
		}
	}
}

// DialAttempts counts outgoing connection attempts (tests pin the
// backoff schedule against reconnect storms).
func (n *Network) DialAttempts() int64 { return n.dialAttempts.Load() }

func (n *Network) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.runReader(conn)
	}
}

// runReader demultiplexes one inbound stream into the local inboxes.
// A malformed frame means the stream is desynchronised: the counter
// ticks and the connection closes (the peer's writer marks the link
// dead and its traffic drops — fail-stop, never a crash).
func (n *Network) runReader(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	defer func() {
		// Inbox sends unwind with rt.ErrStopped when the runtime stops;
		// anything else is a real bug and propagates.
		if r := recover(); r != nil {
			if err, ok := r.(error); !ok || err != rt.ErrStopped {
				panic(r)
			}
		}
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		body, err := wire.ReadFrame(br, n.cfg.MaxFrame)
		if err != nil {
			// Distinguish stream corruption (oversized/garbage length
			// prefix) from a peer simply closing the connection.
			if errors.Is(err, wire.ErrCorrupt) {
				n.decodeErrs.Add(1)
			}
			return
		}
		fi, msg, err := wire.DecodeFrameBody(body, n.cfg.Codec)
		if err != nil {
			n.decodeErrs.Add(1)
			return
		}
		if fi.Dst < 0 || fi.Dst >= len(n.local) || !n.local[fi.Dst] {
			n.decodeErrs.Add(1)
			continue // misrouted
		}
		if fi.Src < 0 || fi.Src >= len(n.down) {
			n.decodeErrs.Add(1)
			continue
		}
		if n.down[fi.Src].Load() || n.down[fi.Dst].Load() {
			n.dropped.Add(1)
			continue
		}
		select {
		case <-n.stop:
			return
		default:
		}
		n.inboxes[fi.Dst].Send(msg)
	}
}

// Inbox implements transport.Transport (local endpoints only; a remote
// endpoint's inbox lives in its hosting process and is nil here).
func (n *Network) Inbox(dst int) rt.Chan { return n.inboxes[dst] }

// SetDown implements transport.Transport. The flag is process-local:
// this process stops sending to and delivering from the endpoint. A
// multi-process failure test sets it on every process (the engine's
// coordinator already broadcasts failure sets). Bringing an endpoint UP
// also bounces this process's links to it: the peer process may have
// crashed and restarted, and the old links are dead or hold stale
// connections — the rejoin path relies on fresh dials reaching the
// restarted process.
func (n *Network) SetDown(node int, down bool) {
	n.down[node].Store(down)
	if !down {
		n.bounceLinks(node)
	}
}

// IsDown implements transport.Transport.
func (n *Network) IsDown(node int) bool { return n.down[node].Load() }

// Bytes implements transport.Transport (encoded bytes for remote sends,
// modelled Size for local ones; sender side only).
func (n *Network) Bytes(c transport.Class) int64 { return n.bytesByClass[c].Load() }

// Messages implements transport.Transport.
func (n *Network) Messages(c transport.Class) int64 { return n.msgsByClass[c].Load() }

// TotalBytes implements transport.Transport.
func (n *Network) TotalBytes() int64 {
	var t int64
	for i := range n.bytesByClass {
		t += n.bytesByClass[i].Load()
	}
	return t
}

// BytesFrom implements transport.Transport.
func (n *Network) BytesFrom(src int) int64 { return n.bytesFrom[src].Load() }

// Dropped implements transport.Transport.
func (n *Network) Dropped() int64 { return n.dropped.Load() }

// ShedFrames counts frames shed by the dead-link byte cap — the subset
// of Dropped caused by queue memory pressure rather than the drain loop.
func (n *Network) ShedFrames() int64 { return n.shed.Load() }

// DecodeErrors counts frames rejected by the codec (tests).
func (n *Network) DecodeErrors() int64 { return n.decodeErrs.Load() }
