module star

go 1.24
