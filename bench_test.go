package star

// One benchmark per table/figure of the paper's evaluation (§7). Each
// executes the corresponding experiment from internal/bench on the
// deterministic simulation runtime at reduced scale (use
// cmd/star-bench for paper-scale runs) and reports throughput-style
// metrics via b.ReportMetric. Run all of them with:
//
//	go test -bench=. -benchmem
import (
	"io"
	"os"
	"testing"

	"star/internal/bench"
)

// benchOut mirrors experiment tables to stdout once per benchmark so
// `go test -bench` output doubles as the figure data.
func runFig(b *testing.B, id string) {
	b.Helper()
	fn, ok := bench.Experiments[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		var out io.Writer = io.Discard
		if i == 0 {
			out = os.Stdout
		}
		fn(bench.Options{Out: out, Short: true, Seed: 42})
	}
}

// BenchmarkFig03Model regenerates Figure 3 (analytical speedup model).
func BenchmarkFig03Model(b *testing.B) { runFig(b, "fig3") }

// BenchmarkFig10Model regenerates Figure 10 (analytical improvements).
func BenchmarkFig10Model(b *testing.B) { runFig(b, "fig10") }

// BenchmarkFig11aYCSBAsync regenerates Figure 11(a).
func BenchmarkFig11aYCSBAsync(b *testing.B) { runFig(b, "fig11a") }

// BenchmarkFig11bTPCCAsync regenerates Figure 11(b).
func BenchmarkFig11bTPCCAsync(b *testing.B) { runFig(b, "fig11b") }

// BenchmarkFig11cYCSBSync regenerates Figure 11(c).
func BenchmarkFig11cYCSBSync(b *testing.B) { runFig(b, "fig11c") }

// BenchmarkFig11dTPCCSync regenerates Figure 11(d).
func BenchmarkFig11dTPCCSync(b *testing.B) { runFig(b, "fig11d") }

// BenchmarkFig12Latency regenerates the Figure 12 latency table.
func BenchmarkFig12Latency(b *testing.B) { runFig(b, "fig12") }

// BenchmarkFig13aYCSBCalvin regenerates Figure 13(a).
func BenchmarkFig13aYCSBCalvin(b *testing.B) { runFig(b, "fig13a") }

// BenchmarkFig13bTPCCCalvin regenerates Figure 13(b).
func BenchmarkFig13bTPCCCalvin(b *testing.B) { runFig(b, "fig13b") }

// BenchmarkFig14aIterationTime regenerates Figure 14(a).
func BenchmarkFig14aIterationTime(b *testing.B) { runFig(b, "fig14a") }

// BenchmarkFig14bOverheadNodes regenerates Figure 14(b).
func BenchmarkFig14bOverheadNodes(b *testing.B) { runFig(b, "fig14b") }

// BenchmarkFig15aReplication regenerates Figure 15(a).
func BenchmarkFig15aReplication(b *testing.B) { runFig(b, "fig15a") }

// BenchmarkFig15bDurability regenerates Figure 15(b).
func BenchmarkFig15bDurability(b *testing.B) { runFig(b, "fig15b") }

// BenchmarkFig16aScalabilityYCSB regenerates Figure 16(a).
func BenchmarkFig16aScalabilityYCSB(b *testing.B) { runFig(b, "fig16a") }

// BenchmarkFig16bScalabilityTPCC regenerates Figure 16(b).
func BenchmarkFig16bScalabilityTPCC(b *testing.B) { runFig(b, "fig16b") }
