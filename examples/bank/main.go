// Bank: a custom workload on the public API. Accounts are spread across
// partitions; transfers move money between two accounts, sometimes on
// different partitions (which STAR defers to the single-master phase).
// At the end the example freezes the cluster and checks the
// serializability invariant the paper's protocol must uphold: total
// money is conserved on every replica, across phase switches, OCC
// commits and asynchronous replication.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"star"
	"star/internal/storage"
	"star/internal/txn"
	"star/internal/workload"
)

const (
	accountsPerPartition = 64
	initialBalance       = 1000
	crossPct             = 25
)

// bankWorkload implements star.Workload.
type bankWorkload struct {
	parts  int
	schema *star.Schema
}

func newBank(parts int) *bankWorkload {
	return &bankWorkload{
		parts: parts,
		schema: star.NewSchema(
			star.Field{Name: "balance", Type: star.FieldInt64},
		),
	}
}

func (b *bankWorkload) Name() string { return "bank" }

func (b *bankWorkload) BuildDB(nparts int, holds []bool) *star.DB {
	db := star.NewDB(nparts, holds)
	db.AddTable("account", b.schema, false)
	return db
}

func (b *bankWorkload) Load(db *star.DB) {
	tbl := db.TableByName("account")
	for p := 0; p < b.parts; p++ {
		if !db.Holds(p) {
			continue
		}
		for i := 0; i < accountsPerPartition; i++ {
			row := b.schema.NewRow()
			b.schema.SetInt64(row, 0, initialBalance)
			tbl.Insert(p, star.K2(uint64(p), uint64(i)), 1, storage.MakeTID(1, uint64(i+1)), row)
		}
	}
}

func (b *bankWorkload) NewGen(seed int64) star.Gen {
	return &bankGen{b: b, rng: rand.New(rand.NewSource(seed))}
}

type bankGen struct {
	b   *bankWorkload
	rng *rand.Rand
}

func (g *bankGen) gen(home int, cross bool) txn.Procedure {
	toPart := home
	if cross {
		toPart = g.rng.Intn(g.b.parts)
		if toPart == home && g.b.parts > 1 {
			toPart = (home + 1) % g.b.parts
		}
	}
	t := &transfer{
		b:      g.b,
		from:   star.K2(uint64(home), uint64(g.rng.Intn(accountsPerPartition))),
		to:     star.K2(uint64(toPart), uint64(g.rng.Intn(accountsPerPartition))),
		fromP:  home,
		toP:    toPart,
		amount: int64(1 + g.rng.Intn(20)),
	}
	if t.from == t.to {
		t.to = star.K2(uint64(toPart), uint64((t.to.Lo+1)%accountsPerPartition))
	}
	return t
}

func (g *bankGen) Mixed(home int) txn.Procedure  { return g.gen(home, g.rng.Intn(100) < crossPct) }
func (g *bankGen) Single(home int) txn.Procedure { return g.gen(home, false) }
func (g *bankGen) Cross(home int) txn.Procedure  { return g.gen(home, true) }

// transfer implements star.Procedure.
type transfer struct {
	b          *bankWorkload
	from, to   star.Key
	fromP, toP int
	amount     int64
}

func (t *transfer) Name() string { return "bank.transfer" }

func (t *transfer) Accesses() []star.Access {
	return []star.Access{
		{Table: 0, Part: t.fromP, Key: t.from, Write: true},
		{Table: 0, Part: t.toP, Key: t.to, Write: true},
	}
}

func (t *transfer) Run(ctx star.Ctx) error {
	src, ok := ctx.Read(0, t.fromP, t.from)
	if !ok {
		return star.ErrConflict
	}
	if t.b.schema.GetInt64(src, 0) < t.amount {
		return star.ErrUserAbort // insufficient funds
	}
	if _, ok := ctx.Read(0, t.toP, t.to); !ok {
		return star.ErrConflict
	}
	ctx.Write(0, t.fromP, t.from, star.AddInt64Op(0, -t.amount))
	ctx.Write(0, t.toP, t.to, star.AddInt64Op(0, t.amount))
	return nil
}

var _ workload.Workload = (*bankWorkload)(nil)

func main() {
	const nodes, workers = 3, 2
	parts := nodes * workers
	wl := newBank(parts)
	cluster, err := star.New(star.Config{
		Nodes:          nodes,
		WorkersPerNode: workers,
		Workload:       wl,
		Iteration:      5 * time.Millisecond,
		Virtual:        true, // deterministic run
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.Run(200 * time.Millisecond)
	cluster.Freeze()
	cluster.Run(50 * time.Millisecond)

	st := cluster.Stats()
	fmt.Printf("transfers committed: %d (%.0f txns/s), conflict/user aborts: %d\n",
		st.Committed, st.Throughput(), st.Aborted)

	if err := cluster.CheckConsistency(); err != nil {
		log.Fatalf("replica divergence: %v", err)
	}
	fmt.Println("replicas consistent across all partitions")

	// Serializability invariant: money is conserved on the full replica.
	total := int64(0)
	db := cluster.DB(0)
	tbl := db.TableByName("account")
	for p := 0; p < parts; p++ {
		for i := 0; i < accountsPerPartition; i++ {
			rec := tbl.Get(p, star.K2(uint64(p), uint64(i)))
			val, _, _ := rec.ReadStable(nil)
			total += wl.schema.GetInt64(val, 0)
		}
	}
	want := int64(parts * accountsPerPartition * initialBalance)
	if total != want {
		log.Fatalf("MONEY NOT CONSERVED: %d != %d", total, want)
	}
	fmt.Printf("money conserved: %d across %d accounts\n", total, parts*accountsPerPartition)
}
