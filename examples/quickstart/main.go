// Quickstart: start a 4-node STAR cluster (1 full replica + 3 partial
// replicas) on the real runtime, run the paper's YCSB mix against it for
// two seconds, and print throughput, latency and replication stats.
package main

import (
	"fmt"
	"log"
	"time"

	"star"
)

func main() {
	cluster, err := star.New(star.Config{
		Nodes:          4,
		WorkersPerNode: 2,
		Workload: star.YCSB(star.YCSBConfig{
			Partitions:          8, // nodes × workers
			RecordsPerPartition: 10000,
			CrossPct:            10, // §7.1.1 default
		}),
		Iteration: 10 * time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("running the YCSB mix for 2s ...")
	cluster.Run(2 * time.Second)

	st := cluster.Stats()
	fmt.Printf("committed: %d txns (%.0f txns/s)\n", st.Committed, st.Throughput())
	fmt.Printf("aborted:   %d (user aborts: %.0f)\n", st.Aborted, st.Extra["user_aborts"])
	fmt.Printf("latency:   p50=%v p99=%v (group commit at every phase switch)\n",
		st.Latency.Quantile(0.5), st.Latency.Quantile(0.99))
	fmt.Printf("deferred cross-partition txns: %.0f\n", st.Extra["deferred"])
	fmt.Printf("replication: %d bytes shipped\n", st.ReplicationBytes)
	fmt.Printf("phase tuning: τp=%.2fms τs=%.2fms (iteration 10ms)\n",
		st.Extra["tau_p_ms"], st.Extra["tau_s_ms"])

	cluster.Freeze()
	time.Sleep(100 * time.Millisecond)
	if err := cluster.CheckConsistency(); err != nil {
		log.Fatalf("replica divergence: %v", err)
	}
	fmt.Println("replica consistency: OK")
}
