// Failover: watch §4.5 end to end on a deterministic cluster. A partial
// replica crashes mid-run; the coordinator detects it at the next
// replication fence, reverts the in-flight epoch, re-masters the lost
// partitions onto surviving replicas (no data movement), and the cluster
// keeps committing. The node later rejoins, catches up from healthy
// holders under the Thomas write rule, and takes its partitions back.
package main

import (
	"fmt"
	"log"
	"time"

	"star"
)

func main() {
	cluster, err := star.New(star.Config{
		Nodes:          4, // node 0 holds a full replica; 1..3 are partial
		WorkersPerNode: 2,
		Workload: star.YCSB(star.YCSBConfig{
			Partitions:          8,
			RecordsPerPartition: 2048,
			CrossPct:            10,
		}),
		Iteration: 5 * time.Millisecond,
		Virtual:   true,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.Run(50 * time.Millisecond)
	healthy := cluster.Stats().Committed
	fmt.Printf("healthy cluster: %d txns committed in 50ms\n", healthy)

	fmt.Println("crashing node 3 (partial replica) ...")
	cluster.FailNode(3)
	cluster.Run(100 * time.Millisecond)
	if halted, reason := cluster.Halted(); halted {
		log.Fatalf("unexpected halt: %s", reason)
	}
	afterFail := cluster.Stats().Committed
	fmt.Printf("degraded cluster kept committing: +%d txns\n", afterFail-healthy)
	fmt.Println("  (node 3's partitions were re-mastered onto surviving replicas;")
	fmt.Println("   the in-flight epoch was reverted — no committed work lost)")

	fmt.Println("recovering node 3 ...")
	cluster.RecoverNode(3)
	cluster.Run(150 * time.Millisecond)
	afterRecover := cluster.Stats().Committed
	fmt.Printf("recovered cluster: +%d more txns\n", afterRecover-afterFail)

	cluster.Freeze()
	cluster.Run(50 * time.Millisecond)
	if err := cluster.CheckConsistency(); err != nil {
		log.Fatalf("replica divergence after rejoin: %v", err)
	}
	fmt.Println("node 3 caught up: every replica of every partition is identical")
}
