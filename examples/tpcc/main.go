// TPC-C: run the paper's NewOrder+Payment mix on a deterministic 4-node
// cluster twice — once with plain value replication, once with the §5
// hybrid strategy (operation replication in the partitioned phase) — and
// report the replication-bandwidth saving alongside throughput.
package main

import (
	"fmt"
	"log"
	"time"

	"star"
)

func run(hybrid bool) star.Stats {
	const nodes, workers = 4, 2
	cluster, err := star.New(star.Config{
		Nodes:          nodes,
		WorkersPerNode: workers,
		Workload: star.TPCC(star.TPCCConfig{
			Warehouses:           nodes * workers,
			Districts:            4,
			CustomersPerDistrict: 120,
			Items:                512,
			// Paper defaults: 10% of NewOrder and 15% of Payment are
			// cross-partition.
		}),
		Iteration:  10 * time.Millisecond,
		HybridRepl: hybrid,
		Virtual:    true,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Run(300 * time.Millisecond)
	cluster.Freeze()
	cluster.Run(50 * time.Millisecond)
	if err := cluster.CheckConsistency(); err != nil {
		log.Fatalf("replica divergence (hybrid=%v): %v", hybrid, err)
	}
	return cluster.Stats()
}

func main() {
	value := run(false)
	hybrid := run(true)

	fmt.Println("TPC-C (NewOrder+Payment), 4 nodes, 10%/15% cross-partition:")
	report := func(name string, st star.Stats) {
		perTxn := int64(0)
		if st.Committed > 0 {
			perTxn = st.ReplicationBytes / st.Committed
		}
		fmt.Printf("  %-22s %8.0f txns/s  p50=%-8v repl=%d B/txn\n",
			name, st.Throughput(), st.Latency.Quantile(0.5), perTxn)
	}
	report("value replication", value)
	report("hybrid replication", hybrid)
	saving := 100 * (1 - float64(hybrid.ReplicationBytes)/float64(value.ReplicationBytes))
	fmt.Printf("hybrid replication ships %.0f%% fewer bytes (§5: Payment deltas\n", saving)
	fmt.Println("replace full 500B+ customer rows; NewOrder inserts still ship rows)")
}
