// Package star is a Go implementation of STAR (Lu, Yu, Madden — VLDB
// 2019): a distributed, replicated in-memory OLTP database with
// asymmetric replication. One set of nodes keeps full replicas, the rest
// keep partial replicas, and a phase-switching protocol alternates
// between a partitioned phase (single-partition transactions run with no
// concurrency control on every node) and a single-master phase (cross-
// partition transactions run under Silo-style OCC on a full replica),
// eliminating two-phase commit while preserving f+1-way replication.
//
// The package runs a whole cluster in one process. Two runtimes are
// available: the real runtime (goroutines + wall clock — the default)
// and a deterministic discrete-event simulation (Virtual: true) used to
// reproduce the paper's multi-node experiments on a small machine.
//
// Workloads follow the stored-procedure model (see Workload, Procedure):
// the built-in YCSB and TPC-C generators mirror §7.1.1, and custom
// workloads implement the same interfaces (see examples/bank).
package star

import (
	"errors"
	"time"

	"star/internal/core"
	"star/internal/metrics"
	"star/internal/rt"
	"star/internal/storage"
	"star/internal/txn"
	"star/internal/workload"
	"star/internal/workload/tpcc"
	"star/internal/workload/ycsb"
)

// Re-exported workload-building types: custom workloads implement
// Workload/Gen/Procedure against these (they are stable aliases of the
// internal packages).
type (
	// Workload builds, loads and generates transactions for a database.
	Workload = workload.Workload
	// Gen produces transaction instances for one worker.
	Gen = workload.Gen
	// Procedure is one transaction: declared footprint plus logic.
	Procedure = txn.Procedure
	// Ctx is the data-access interface handed to procedures.
	Ctx = txn.Ctx
	// Access declares one element of a procedure's footprint.
	Access = txn.Access
	// IndexSpec declares an ordered secondary index on a table
	// (Table.AddIndex); procedures query it via Ctx.LookupIndex.
	IndexSpec = storage.IndexSpec
	// Stats is a snapshot of cluster metrics.
	Stats = metrics.Stats
)

// ErrUserAbort rolls back the calling procedure (e.g. TPC-C's invalid
// item id).
var ErrUserAbort = txn.ErrUserAbort

// ErrConflict signals a concurrency-control abort; the engine retries.
var ErrConflict = txn.ErrConflict

// Config describes a STAR cluster.
type Config struct {
	// Nodes is the cluster size f+k (default 4, as in the paper).
	Nodes int
	// FullReplicas is f, the number of nodes holding the entire
	// database (default 1).
	FullReplicas int
	// WorkersPerNode is the worker-thread count per node (default 4;
	// the paper uses 12). Partitions = Nodes × WorkersPerNode.
	WorkersPerNode int
	// Workload supplies schema, data and transactions (required).
	Workload Workload
	// Iteration is the phase-switching iteration time e = τp+τs
	// (default 10ms, §4.3).
	Iteration time.Duration
	// SyncRepl holds write locks until every replica acks (SYNC STAR).
	SyncRepl bool
	// HybridRepl enables operation replication in the partitioned phase
	// (§5's hybrid strategy).
	HybridRepl bool
	// Logging enables per-worker value logging with fence flushes.
	Logging bool
	// LogDir writes real recovery-log files under this directory
	// (implies Logging); see internal/wal for the recovery path.
	LogDir string
	// Checkpoint starts a per-node fuzzy checkpointing process (§4.5.1);
	// requires LogDir.
	Checkpoint bool
	// ReadCommitted lowers single-master isolation to READ COMMITTED
	// (§3): read validation is skipped at commit.
	ReadCommitted bool
	// SnapshotReads serves read-only transactions (txn.ReadOnlyMarker,
	// e.g. TPC-C Stock-Level) from the generating node's epoch-fence
	// snapshot instead of routing them to the master: consistent as of
	// the last phase switch, no coordination, results release
	// immediately.
	SnapshotReads bool
	// Virtual runs the cluster on the deterministic simulation runtime;
	// use Cluster.RunVirtual to advance time.
	Virtual bool
	// Seed drives all deterministic randomness.
	Seed int64
	// FlushBytes bounds a replication batch's modelled wire size
	// (default 16 KiB; negative disables the byte bound). Batches also
	// flush at every epoch fence.
	FlushBytes int
	// FlushEvery additionally bounds a replication batch in entries
	// (0 = no entry bound).
	FlushEvery int
	// FlushPolicy selects how the replication flush threshold evolves:
	// FlushAdaptive (default) re-sizes each destination's byte bound at
	// every epoch fence from the measured write volume (growth-only,
	// capped), FlushFixed keeps FlushBytes as-is.
	FlushPolicy FlushPolicy
}

// FlushPolicy re-exports the replication flush-threshold policy.
type FlushPolicy = core.FlushPolicy

// Flush policies (see Config.FlushPolicy).
const (
	FlushAdaptive = core.FlushAdaptive
	FlushFixed    = core.FlushFixed
)

// Cluster is a running STAR cluster.
type Cluster struct {
	cfg    Config
	real   *rt.Real
	sim    *rt.Sim
	engine *core.Engine
}

// New builds, loads and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Workload == nil {
		return nil, errors.New("star: Config.Workload is required")
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Nodes < 2 {
		return nil, errors.New("star: need at least 2 nodes (one full replica + one partial)")
	}
	c := &Cluster{cfg: cfg}
	var r rt.Runtime
	if cfg.Virtual {
		c.sim = rt.NewSim()
		r = c.sim
	} else {
		c.real = rt.NewReal()
		r = c.real
	}
	c.engine = core.New(core.Config{
		RT:             r,
		Nodes:          cfg.Nodes,
		FullReplicas:   cfg.FullReplicas,
		WorkersPerNode: cfg.WorkersPerNode,
		Workload:       cfg.Workload,
		Iteration:      cfg.Iteration,
		SyncRepl:       cfg.SyncRepl,
		HybridRepl:     cfg.HybridRepl,
		Logging:        cfg.Logging,
		LogDir:         cfg.LogDir,
		Checkpoint:     cfg.Checkpoint,
		ReadCommitted:  cfg.ReadCommitted,
		SnapshotReads:  cfg.SnapshotReads,
		Seed:           cfg.Seed,
		FlushBytes:     cfg.FlushBytes,
		FlushEvery:     cfg.FlushEvery,
		FlushPolicy:    cfg.FlushPolicy,
	})
	return c, nil
}

// Run lets the cluster execute for d: wall-clock time on the real
// runtime, virtual time on the simulation runtime.
func (c *Cluster) Run(d time.Duration) {
	if c.sim != nil {
		c.sim.Run(c.sim.Now() + d)
		return
	}
	time.Sleep(d)
}

// Stats snapshots throughput, latency and replication metrics.
func (c *Cluster) Stats() Stats { return c.engine.Stats() }

// FailNode crash-stops a node; the coordinator detects it at the next
// replication fence, reverts the in-flight epoch, and re-masters the
// node's partitions onto surviving replicas (§4.5).
func (c *Cluster) FailNode(id int) { c.engine.FailNode(id) }

// RecoverNode rejoins a failed node: at the next fence it copies
// partition state from healthy holders under the Thomas write rule and
// resumes mastering its partitions.
func (c *Cluster) RecoverNode(id int) { c.engine.RecoverNode(id) }

// Halted reports whether the cluster lost availability (no complete
// replica remains — §4.5.3 cases 2 and 4) and why.
func (c *Cluster) Halted() (bool, string) { return c.engine.Halted() }

// Freeze pauses workload generation (replication and fences continue),
// letting in-flight work settle — used before consistency checks.
func (c *Cluster) Freeze() { c.engine.Freeze() }

// Unfreeze resumes workload generation.
func (c *Cluster) Unfreeze() { c.engine.Unfreeze() }

// CheckConsistency verifies that all live replicas of every partition
// hold identical data. Call after Freeze + a settling Run.
func (c *Cluster) CheckConsistency() error { return c.engine.CheckReplicaConsistency() }

// DB exposes node i's database copy for read-only inspection (invariant
// checks in examples and tests). Freeze the cluster first.
func (c *Cluster) DB(i int) *DB { return c.engine.DB(i) }

// Close shuts the cluster down and releases its goroutines.
func (c *Cluster) Close() {
	if c.sim != nil {
		c.sim.Stop()
		return
	}
	c.real.Stop()
}

// YCSBConfig mirrors the paper's YCSB setup (§7.1.1).
type YCSBConfig = ycsb.Config

// YCSB builds the YCSB workload: 10 columns × 10 bytes, 10 accesses per
// transaction with a 90/10 read/write mix, uniform keys.
func YCSB(cfg YCSBConfig) Workload { return ycsb.New(cfg) }

// TPCCConfig mirrors the paper's TPC-C setup (§7.1.1).
type TPCCConfig = tpcc.Config

// TPCC builds the TPC-C workload (NewOrder + Payment, partitioned by
// warehouse, ITEM replicated everywhere).
func TPCC(cfg TPCCConfig) Workload { return tpcc.New(cfg) }

// Schema/field helpers for custom workloads.
type (
	// DB is one node's set of tables and partitions.
	DB = storage.DB
	// Table is a partitioned hash table.
	Table = storage.Table
	// Schema describes a table's fixed-width row layout.
	Schema = storage.Schema
	// Field is one column definition.
	Field = storage.Field
	// Key is the composite record key.
	Key = storage.Key
	// FieldOp is a field-level write (the unit of operation replication).
	FieldOp = storage.FieldOp
)

// Field type enumeration for custom schemas.
const (
	FieldUint64  = storage.FieldUint64
	FieldInt64   = storage.FieldInt64
	FieldFloat64 = storage.FieldFloat64
	FieldBytes   = storage.FieldBytes
)

// NewSchema builds a schema from column definitions.
func NewSchema(fields ...Field) *Schema { return storage.NewSchema(fields...) }

// NewDB creates an empty database (custom Workload.BuildDB implementations).
func NewDB(nparts int, holds []bool) *DB { return storage.NewDB(nparts, holds) }

// K1 and K2 build one- and two-component keys.
func K1(a uint64) Key { return storage.K1(a) }

// K2 builds a two-component key.
func K2(a, b uint64) Key { return storage.K2(a, b) }

// Field-op constructors for procedure writes.
var (
	// AddInt64Op adds a delta to an integer column.
	AddInt64Op = storage.AddInt64Op
	// AddFloat64Op adds a delta to a float column.
	AddFloat64Op = storage.AddFloat64Op
	// PrependOp prepends bytes to a byte column, truncating at capacity.
	PrependOp = storage.PrependOp
	// SetFieldOp replaces one column with the value from a template row.
	SetFieldOp = storage.SetFieldOp
)
