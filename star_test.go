package star

import (
	"testing"
	"time"
)

func TestPublicAPIVirtualCluster(t *testing.T) {
	c, err := New(Config{
		Nodes:          3,
		WorkersPerNode: 2,
		Workload: YCSB(YCSBConfig{
			Partitions:          6,
			RecordsPerPartition: 256,
			CrossPct:            20,
		}),
		Iteration: 2 * time.Millisecond,
		Virtual:   true,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(40 * time.Millisecond)
	st := c.Stats()
	if st.Committed == 0 {
		t.Fatal("no commits through the public API")
	}
	c.Freeze()
	c.Run(20 * time.Millisecond)
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRealCluster(t *testing.T) {
	c, err := New(Config{
		Nodes:          2,
		WorkersPerNode: 2,
		Workload: YCSB(YCSBConfig{
			Partitions:          4,
			RecordsPerPartition: 128,
			CrossPct:            10,
		}),
		Iteration: 5 * time.Millisecond,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Committed == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Stats().Committed == 0 {
		t.Fatal("no commits on the real runtime")
	}
}

func TestPublicAPIFailover(t *testing.T) {
	c, err := New(Config{
		Nodes:          4,
		WorkersPerNode: 2,
		Workload: YCSB(YCSBConfig{
			Partitions:          8,
			RecordsPerPartition: 128,
			CrossPct:            10,
		}),
		Iteration: 2 * time.Millisecond,
		Virtual:   true,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(20 * time.Millisecond)
	c.FailNode(3)
	c.Run(120 * time.Millisecond)
	if halted, reason := c.Halted(); halted {
		t.Fatalf("halted after a partial-replica failure: %s", reason)
	}
	before := c.Stats().Committed
	c.RecoverNode(3)
	c.Run(120 * time.Millisecond)
	if c.Stats().Committed <= before {
		t.Fatal("no progress after recovery")
	}
	c.Freeze()
	c.Run(30 * time.Millisecond)
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing workload must error")
	}
	if _, err := New(Config{Nodes: 1, Workload: YCSB(YCSBConfig{Partitions: 1, RecordsPerPartition: 8})}); err == nil {
		t.Fatal("1-node cluster must error")
	}
}

func TestPublicAPITPCC(t *testing.T) {
	c, err := New(Config{
		Nodes:          2,
		WorkersPerNode: 2,
		Workload: TPCC(TPCCConfig{
			Warehouses:           4,
			Districts:            2,
			CustomersPerDistrict: 32,
			Items:                64,
		}),
		Iteration:  2 * time.Millisecond,
		HybridRepl: true,
		Virtual:    true,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(40 * time.Millisecond)
	st := c.Stats()
	if st.Committed == 0 {
		t.Fatal("no TPC-C commits")
	}
	if st.ReplicationBytes == 0 {
		t.Fatal("no replication traffic recorded")
	}
}
